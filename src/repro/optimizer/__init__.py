"""Optimal-mapping tier: fold-count minimization behind the cache.

The heuristic flow (priority-cut tech-map + cone-ordered list
scheduling) is fast but leaves folds on the table; because compiled
programs are content-addressed and cached, a *slow* optimizer that
runs once per program is pure win for all subsequent serving traffic —
effective clock is CacheClock / fold-count (paper Sec. IV).

This package is that optimizer: area-flow cut re-covering
(:mod:`~repro.optimizer.cuts`), LP-style lower bounds
(:mod:`~repro.optimizer.bounds`), a time-boxed pure-python
branch-and-bound (:mod:`~repro.optimizer.search`) with an optional
ortools CP-SAT backend (:mod:`~repro.optimizer.cpsat`), and a rebuild
step emitting standard schedules (:mod:`~repro.optimizer.rebuild`) —
orchestrated by :func:`optimize_schedule`, which never returns more
folds than the heuristic.  ``freac optimize`` is the CLI; see
docs/optimizer.md.
"""

from .bounds import build_graph, lower_bound
from .config import (
    BACKENDS,
    OPTIMIZER_VERSION,
    OptimizerConfig,
    cpsat_available,
)
from .core import OptimizationOutcome, optimize_schedule
from .cuts import area_remap
from .rebuild import rebuild_schedule

__all__ = [
    "BACKENDS",
    "OPTIMIZER_VERSION",
    "OptimizationOutcome",
    "OptimizerConfig",
    "area_remap",
    "build_graph",
    "cpsat_available",
    "lower_bound",
    "optimize_schedule",
    "rebuild_schedule",
]
