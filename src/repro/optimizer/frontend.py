"""``freac optimize`` — fold-count minimization report and CI gate.

Per benchmark it compiles the heuristic schedule, runs
:func:`~repro.optimizer.core.optimize_schedule` under the time box,
and prints fold count before/after, the lower bound and its gap, and
time-to-best.  ``--all --json report.json --check --min-improved 5``
is the CI invocation: exit 1 if any benchmark got *worse* (must never
happen) or fewer than N improved.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from .config import BACKENDS, OPTIMIZER_VERSION, OptimizerConfig


def optimize_benchmark(
    name: str,
    *,
    mccs: int,
    lut_inputs: int,
    config: OptimizerConfig,
) -> Dict[str, object]:
    """One benchmark through heuristic compile + optimization pass."""
    from ..circuits.library import mapped_pe
    from ..folding.schedule import TileResources
    from ..folding.scheduler import list_schedule
    from .core import optimize_schedule

    compile_start = time.monotonic()
    netlist = mapped_pe(name, k=lut_inputs)
    resources = TileResources(mccs=mccs, lut_inputs=lut_inputs)
    heuristic = list_schedule(netlist, resources)
    compile_s = time.monotonic() - compile_start

    outcome = optimize_schedule(
        netlist, resources, config=config, heuristic=heuristic
    )
    row: Dict[str, object] = {
        "benchmark": name,
        "mccs": mccs,
        "lut_inputs": lut_inputs,
        "heuristic_compile_s": round(compile_s, 6),
    }
    row.update(outcome.stats_dict())
    return row


def _format_rows(rows: List[Dict[str, object]]) -> str:
    from ..experiments.common import format_table

    headers = ("benchmark", "heur", "opt", "delta", "bound", "gap",
               "LUTs", "backend", "best@s", "total s")
    table = []
    for row in rows:
        heur = row["heuristic_fold_cycles"]
        opt = row["optimized_fold_cycles"]
        gap = f"{row['bound_gap']}"
        if row["proven_optimal"]:
            gap += " (proven)"
        luts = f"{row['lut_count_before']}"
        if row["lut_count_after"] != row["lut_count_before"]:
            luts += f"->{row['lut_count_after']}"
        delta = opt - heur
        table.append((
            row["benchmark"], heur, opt,
            f"{delta:+d}" if delta else "0",
            row["lower_bound"], gap, luts, row["backend"],
            f"{row['time_to_best_s']:.2f}", f"{row['elapsed_s']:.2f}",
        ))
    return format_table(headers, table)


def cmd_optimize(args: argparse.Namespace) -> int:
    """Exit codes: 0 gates pass, 1 a gate fails, 2 bad invocation."""
    from ..errors import OptimizerError
    from ..workloads.suite import benchmark_names

    names = benchmark_names()
    if args.all:
        targets = list(names)
    else:
        if not args.benchmark:
            print("give a benchmark name or --all", file=sys.stderr)
            return 2
        target = args.benchmark.upper()
        if target not in names:
            print(f"unknown benchmark {target!r}; pick one of "
                  f"{', '.join(names)}", file=sys.stderr)
            return 2
        targets = [target]

    config = OptimizerConfig(
        backend=args.backend, budget_s=args.budget_s, seed=args.seed
    )
    try:
        backend = config.resolve_backend()
    except OptimizerError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    rows: List[Dict[str, object]] = []
    for name in targets:
        row = optimize_benchmark(
            name, mccs=args.mccs, lut_inputs=args.lut_inputs,
            config=config,
        )
        rows.append(row)
        if args.all:
            marker = "improved" if row["improved"] else "no change"
            if row["rejected"]:
                marker = "REJECTED (heuristic served)"
            print(f"[{len(rows)}/{len(targets)}] {name}: "
                  f"{row['heuristic_fold_cycles']} -> "
                  f"{row['optimized_fold_cycles']} folds ({marker})",
                  file=sys.stderr)

    improved = sum(1 for row in rows if row["improved"])
    worse = [row["benchmark"] for row in rows
             if row["optimized_fold_cycles"] > row["heuristic_fold_cycles"]]
    summary = {
        "optimizer_version": OPTIMIZER_VERSION,
        "backend": backend,
        "budget_s": args.budget_s,
        "mccs": args.mccs,
        "benchmarks": len(rows),
        "improved": improved,
        "proven_optimal": sum(1 for r in rows if r["proven_optimal"]),
        "rejected": sum(1 for r in rows if r["rejected"]),
        "never_worse": not worse,
    }

    if args.json:
        report = {"summary": summary, "results": rows}
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)

    print(_format_rows(rows))
    print(f"\n{improved}/{len(rows)} improved, "
          f"{summary['proven_optimal']} proven optimal, "
          f"{summary['rejected']} rejected "
          f"(backend {backend}, budget {args.budget_s:g}s)")

    if args.check:
        if worse:
            print(f"GATE FAILED: fold count increased on "
                  f"{', '.join(worse)}", file=sys.stderr)
            return 1
        if improved < args.min_improved:
            print(f"GATE FAILED: only {improved} benchmark(s) improved "
                  f"(need >= {args.min_improved})", file=sys.stderr)
            return 1
        print("gate passed: never worse"
              + (f", >= {args.min_improved} improved"
                 if args.min_improved else ""),
              file=sys.stderr)
    return 0


def add_parsers(sub: "argparse._SubParsersAction") -> None:
    opt = sub.add_parser(
        "optimize",
        help="minimize fold counts and report before/after per benchmark",
    )
    opt.add_argument("benchmark", nargs="?", default=None,
                     help="benchmark name (or use --all)")
    opt.add_argument("--all", action="store_true",
                     help="optimize every benchmark in the suite")
    opt.add_argument("--mccs", type=int, default=1,
                     help="MCCs per accelerator tile (default 1)")
    opt.add_argument("--lut-inputs", type=int, default=5,
                     choices=(4, 5), help="LUT width (default 5)")
    opt.add_argument("--backend", choices=BACKENDS, default="auto",
                     help="search backend (default: cpsat when ortools "
                     "is installed, else the pure-python bnb)")
    opt.add_argument("--budget-s", type=float,
                     default=OptimizerConfig().budget_s,
                     help="optimization time box per benchmark, seconds")
    opt.add_argument("--seed", type=int, default=0)
    opt.add_argument("--json", default=None, metavar="FILE",
                     help="also write the fold report as JSON")
    opt.add_argument("--check", action="store_true",
                     help="exit 1 if any fold count got worse or fewer "
                     "than --min-improved improved")
    opt.add_argument("--min-improved", type=int, default=0,
                     help="with --check: require at least N improved")
