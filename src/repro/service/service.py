"""``AcceleratorService``: device pool + job scheduler + admission.

The runtime between many callers and a pool of
:class:`~repro.freac.device.FreacDevice` instances.  One *wave* does:

1. **Admission-checked dequeue** — pop the highest-priority batch
   group (same-benchmark jobs merge into one run), expiring jobs whose
   deadline passed;
2. **Placement** — claim disjoint slices from the pool (best-fit
   packing, so independent jobs co-reside on one device), partition
   exactly those slices and program them from the compiled-program
   cache entry;
3. **Execution** — re-check deadlines, fill scratchpads, run, verify,
   with bounded retry: a :class:`~repro.errors.CapacityError` (batch
   too big for the scratchpad) backs off exponentially (with jitter)
   and resubmits the chunk at half size instead of failing;
4. **Completion** — per-job results, latency samples, slice release.

The service runs in one of two modes:

* **Synchronous** (``workers=0``, the default): ``pump()`` runs waves
  inline and ``result()`` pumps until the job is terminal — fully
  deterministic, one wave at a time.
* **Concurrent** (``workers=N``): a
  :class:`~repro.service.workers.WorkerPool` of N dispatch threads
  claims waves as slices free up, so waves on disjoint slice groups
  are in flight simultaneously — the paper's independent slices
  serving independent tenants.  ``submit`` stays non-blocking (a full
  bounded queue rejects with ``SATURATED`` backpressure), ``result``
  blocks on a condition variable, and ``shutdown`` drains the queue
  and joins every worker before unlocking the devices.

Either way the service is single-process: this is a simulator, not an
RPC server, but it exercises the real multi-tenant mechanics —
priority, co-residency, batching, rejection, deadline, retry,
backpressure, and crash-safe shutdown.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..circuits.library import build_pe
from ..errors import CapacityError, ReproError, RequestError, ServiceError
from ..freac.compute_slice import SlicePartition
from ..freac.device import FreacDevice
from ..freac.engine import EngineLike, resolve_engine
from ..freac.runner import plan_layout
from ..freac.session import ExecutionSession
from ..freac.timing import kernel_timing
from ..optimizer import OptimizerConfig
from ..params import SystemParams
from ..power.energy import EnergyModel
from ..telemetry import Telemetry
from ..telemetry.core import resolve
from ..workloads.datagen import Dataset, dataset_for
from .elastic import ElasticConfig, ElasticPartitioner
from .jobs import Job, JobQueue, JobRequest, JobResult, JobState
from .placement import Placement, SlicePool
from .programs import CompiledProgram, ProgramCache
from .stats import LatencyTracker, ServiceStats
from .workers import Wave, WorkerPool

logger = logging.getLogger("repro.service")

_ZERO_TOTALS = {
    "invocations": 0,
    "lut_evaluations": 0,
    "mac_operations": 0,
    "bus_words": 0,
}


class _WaveDeadline(Exception):
    """Internal: a wave's end-to-end deadline passed mid-execution.

    Deliberately *not* a :class:`ReproError` subclass, so the generic
    run-failure handler cannot swallow it into ``FAILED`` — the wave
    aborter decides per job between ``TIMED_OUT`` and a requeue.
    """


class AcceleratorService:
    """A multi-tenant serving layer over a pool of FReaC devices."""

    #: Mutated only under ``self._lock`` (``_job_cv`` wraps the same
    #: lock) — enforced by ``repro.analysis.selfcheck`` in CI.
    _GUARDED_BY_LOCK = (
        "_next_id", "jobs", "_compiled", "_counters", "_closed",
        "latencies",
    )

    def __init__(
        self,
        *,
        devices: int = 1,
        system: Optional[SystemParams] = None,
        partition: Optional[SlicePartition] = None,
        cache: Optional[ProgramCache] = None,
        cache_capacity: int = 16,
        cache_dir: Optional[str] = None,
        cache_namespace: Optional[str] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.0,
        retry_backoff_cap_s: float = 1.0,
        retry_jitter: float = 0.1,
        batching: bool = True,
        max_batch_items: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        engine: EngineLike = None,
        optimizer: Optional[OptimizerConfig] = None,
        workers: int = 0,
        max_queue_depth: Optional[int] = None,
        wave_latency_s: Optional[float] = None,
        item_latency_s: Optional[float] = None,
        model_latency_scale: Optional[float] = None,
        elastic: Union[ElasticConfig, bool, None] = None,
        done_callback: Optional[Callable[[Job], None]] = None,
    ) -> None:
        if devices < 1:
            raise ServiceError("the service needs at least one device")
        if workers < 0:
            raise ServiceError("workers must be >= 0 (0 = synchronous)")
        if retry_backoff_s < 0 or retry_backoff_cap_s < 0:
            raise ServiceError("retry backoff must be non-negative")
        if not 0.0 <= retry_jitter <= 1.0:
            raise ServiceError("retry jitter must be within [0, 1]")
        if wave_latency_s is not None and wave_latency_s < 0:
            raise ServiceError("wave latency must be non-negative")
        if item_latency_s is not None and item_latency_s < 0:
            raise ServiceError("item latency must be non-negative")
        if model_latency_scale is not None and model_latency_scale < 0:
            raise ServiceError("model latency scale must be non-negative")
        self.telemetry = resolve(telemetry)
        self.partition = partition or SlicePartition(
            compute_ways=4, scratchpad_ways=4
        )
        if self.partition.scratchpad_ways == 0:
            raise ServiceError("the service partition needs scratchpad ways")
        self.devices = [
            FreacDevice(system, telemetry=self.telemetry)
            for _ in range(devices)
        ]
        self.pool = SlicePool([d.slice_count for d in self.devices])
        # Not `cache or ...`: an empty ProgramCache is falsy (len == 0).
        self.cache = (
            cache if cache is not None
            else ProgramCache(
                cache_capacity, cache_dir, telemetry=self.telemetry,
                namespace=cache_namespace,
            )
        )
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_cap_s = retry_backoff_cap_s
        self.retry_jitter = retry_jitter
        self.batching = batching
        self.max_batch_items = max_batch_items
        #: The fleet-default engine name; per-job requests
        #: may override it (any EngineLike is accepted and
        #: normalized, docs/execution.md).
        self.engine = resolve_engine(engine).name
        #: Base config for ``submit(..., optimize=True)`` jobs; resolved
        #: eagerly so a cpsat pin without ortools fails at construction,
        #: not on the first optimizing submission.
        self.optimizer = optimizer or OptimizerConfig()
        self.optimizer.resolve_backend()
        #: Emulated device-busy time per wave: the host blocks this long
        #: after each wave's compute, standing in for the interval the
        #: cache-side accelerator would own the work (the simulator
        #: otherwise burns host CPU *as* the device model).  Workers
        #: overlap these intervals across disjoint slices — the
        #: concurrency the paper's independent slices actually buy.
        #: ``item_latency_s`` is the per-invocation variant: the busy
        #: interval grows with the wave's merged item count, so total
        #: emulated device time is conserved under batch merging (the
        #: sharded-gateway sweep relies on this — a deeper queue must
        #: not make a shard look faster by merging its sleep away).
        self.wave_latency_s = wave_latency_s
        self.item_latency_s = item_latency_s
        #: Scale factor turning the analytical timing model's seconds
        #: (kernel + billed reconfiguration) into emulated device-busy
        #: sleep, so partition *shape* shows up in wall-clock the way
        #: it would on real hardware.  ``None``/0 disables it.
        self.model_latency_scale = model_latency_scale
        #: Energy bookkeeping for items/s-per-watt stats.
        self.energy_model = EnergyModel()
        #: The elastic way partitioner (docs/elastic.md): ``True`` or
        #: an :class:`ElasticConfig` turns on per-slice grow/shrink of
        #: the compute/cache split between waves, warm-slice reuse,
        #: and live reprogramming.  ``None`` keeps the static
        #: all-cache-idle behavior (full setup/teardown every wave).
        self.elastic: Optional[ElasticPartitioner] = None
        if elastic:
            self.elastic = ElasticPartitioner(
                self.devices,
                self.partition,
                elastic if isinstance(elastic, ElasticConfig) else None,
                energy=self.energy_model,
                clocking=self.devices[0].system.clocking,
            )
        #: Invoked once per job right after it reaches a terminal state
        #: (the gateway shard runtime's completion hook).  Called
        #: outside the service lock; exceptions are logged, never
        #: propagated into the finishing wave.
        self.done_callback = done_callback

        # One re-entrant lock is the root of the ordering discipline:
        # service lock first, component locks (queue/pool/cache/metric)
        # only underneath it, never the reverse.
        self._lock = threading.RLock()
        self._job_cv = threading.Condition(self._lock)
        self._rng = random.Random(0)    # seeded: jitter is replayable
        self._sleep = time.sleep        # injectable in tests

        self.queue = JobQueue(max_depth=max_queue_depth)
        self.jobs: Dict[int, Job] = {}
        self._compiled: Dict[int, CompiledProgram] = {}
        self._next_id = 1
        self.latencies = LatencyTracker()
        self._counters = {
            "submitted": 0, "completed": 0, "rejected": 0, "failed": 0,
            "cancelled": 0, "timed_out": 0, "saturated": 0, "requeued": 0,
            "retries": 0, "batches": 0, "batched_jobs": 0,
            "warm_waves": 0, "energy_j": 0.0, "energy_items": 0,
        }
        self._closed = False
        # Construct last: workers start claiming immediately and touch
        # everything above.
        self.workers: Optional[WorkerPool] = (
            WorkerPool(self, workers) if workers else None
        )

    @property
    def worker_count(self) -> int:
        return self.workers.count if self.workers is not None else 0

    def __enter__(self) -> "AcceleratorService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Drain on a clean exit; on an exception just stop and unlock.
        self.shutdown(drain=exc_type is None, timeout_s=60.0)
        return False

    # ------------------------------------------------------------------
    # Front end: submit / result / cancel
    # ------------------------------------------------------------------

    def submit(
        self,
        benchmark: str,
        items: int,
        *,
        priority: int = 0,
        mccs_per_tile: int = 1,
        lut_inputs: int = 5,
        slices: int = 1,
        timeout_s: Optional[float] = None,
        seed: int = 0,
        dataset: Optional[Dataset] = None,
        engine: EngineLike = None,
        optimize: bool = False,
        opt_budget_s: Optional[float] = None,
    ) -> Job:
        """Admit one request; returns its :class:`Job` immediately.

        Invalid *requests* raise :class:`~repro.errors.RequestError`;
        programs whose lint reports carry error findings are admitted
        as ``REJECTED`` jobs whose result holds the full
        :class:`~repro.analysis.AnalysisReport` — admission never
        crashes mid-run.  With a bounded queue, a job that finds it
        full is returned ``SATURATED`` (backpressure, not an
        exception): the caller decides whether to retry later.
        """
        if self._closed:
            raise ServiceError("the service is shut down")
        if items < 1:
            raise RequestError("a job needs at least one item")
        if not 1 <= slices <= self.pool.max_slices:
            raise RequestError(
                f"a job may use 1..{self.pool.max_slices} slices, "
                f"not {slices}"
            )
        if dataset is not None:
            if dataset.items != items:
                raise RequestError(
                    f"dataset has {dataset.items} items but {items} "
                    "were requested"
                )
            if dataset.benchmark != benchmark.upper():
                raise RequestError(
                    f"dataset is for {dataset.benchmark}, "
                    f"not {benchmark.upper()}"
                )

        if opt_budget_s is not None and opt_budget_s <= 0:
            raise RequestError("the optimizer budget must be positive")

        # Compile outside the service lock: the cache has its own, and
        # a cold compile is the slowest thing admission ever does.
        # An optimizing submission compiles (and caches) under its own
        # content address — a first ``optimize=True`` job pays the
        # time-boxed search once, every repeat is a warm hit on the
        # shorter-fold program.
        opt_config: Optional[OptimizerConfig] = None
        if optimize:
            opt_config = (
                self.optimizer.replace(budget_s=opt_budget_s)
                if opt_budget_s is not None else self.optimizer
            )
        try:
            compiled, cache_hit = self.cache.lookup(
                benchmark, lut_inputs=lut_inputs,
                mccs_per_tile=mccs_per_tile, optimizer=opt_config,
            )
        except KeyError as exc:
            raise RequestError(str(exc)) from None

        request = JobRequest(
            benchmark=benchmark.upper(), items=items, priority=priority,
            mccs_per_tile=mccs_per_tile, lut_inputs=lut_inputs,
            slices=slices, timeout_s=timeout_s, seed=seed, dataset=dataset,
            engine=resolve_engine(engine).name if engine is not None
            else self.engine,
            optimize=optimize, opt_budget_s=opt_budget_s,
        )
        with self._lock:
            job = Job(
                id=self._next_id, request=request,
                submitted_at=time.perf_counter(),
                cache_hit=cache_hit,
            )
            self._next_id += 1
            self.jobs[job.id] = job
            self._counters["submitted"] += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "service.submissions", "jobs offered to admission"
            ).inc(benchmark=request.benchmark)

        if not compiled.ok:
            report = compiled.admission_report()
            self._admission_outcome("rejected")
            self._finish(job, JobState.REJECTED, admission=report,
                         error=f"{len(report.errors)} lint error(s)")
            return job

        with self._lock:
            self._compiled[job.id] = compiled
            queued = self.queue.offer(job)
        if not queued:
            self._admission_outcome("saturated")
            self._finish(
                job, JobState.SATURATED,
                error=(
                    f"queue is full ({self.queue.max_depth} jobs pending); "
                    "retry later"
                ),
            )
            return job
        self._admission_outcome("accepted")
        if self.elastic is not None:
            self.elastic.note_submit()
        self._gauge_queue_depth()
        if self.workers is not None:
            self.workers.kick()
        return job

    def _admission_outcome(self, outcome: str) -> None:
        if self.telemetry.enabled:
            self.telemetry.counter(
                "service.admission", "admission outcomes"
            ).inc(outcome=outcome)

    def submit_request(self, request) -> Job:
        """Admit one :class:`repro.request.RunRequest`.

        The CLI front ends build a validated request object once and
        hand it over whole instead of re-threading each knob.
        """
        return self.submit(
            request.benchmark, request.items, **request.submit_kwargs()
        )

    def result(self, job: Union[Job, int],
               timeout_s: Optional[float] = None) -> JobResult:
        """Block until the job is terminal.

        Synchronous mode pumps the scheduler inline; concurrent mode
        parks on the completion condition until a worker finishes the
        job.  Raises :class:`ServiceError` if ``timeout_s`` elapses
        first (the job itself keeps whatever state it has).
        """
        job = self._resolve(job)
        deadline = (
            time.perf_counter() + timeout_s if timeout_s is not None else None
        )
        if self.workers is not None:
            with self._job_cv:
                while not job.done:
                    if deadline is not None:
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0:
                            raise ServiceError(
                                f"job {job.id} not finished within {timeout_s}s"
                            )
                        self._job_cv.wait(timeout=min(0.1, remaining))
                    else:
                        self._job_cv.wait(timeout=0.1)
        else:
            while not job.done:
                if deadline is not None and time.perf_counter() > deadline:
                    raise ServiceError(
                        f"job {job.id} not finished within {timeout_s}s"
                    )
                self.pump()
        assert job.result is not None
        return job.result

    def cancel(self, job: Union[Job, int]) -> bool:
        """Cancel a still-queued job; running/terminal jobs are not."""
        job = self._resolve(job)
        with self._lock:
            # The state check and the finish are one atomic step, so a
            # worker claiming this job concurrently either beats the
            # cancel (state already RUNNING) or loses it cleanly (the
            # queue compacts terminal jobs away).
            if job.state is not JobState.PENDING:
                return False
            self._finish(job, JobState.CANCELLED, error="cancelled by caller")
            return True

    def _resolve(self, job: Union[Job, int]) -> Job:
        if isinstance(job, Job):
            return job
        with self._lock:
            try:
                return self.jobs[job]
            except KeyError:
                raise ServiceError(f"unknown job id {job!r}") from None

    # ------------------------------------------------------------------
    # Synchronous scheduler: one pump = place a wave, execute, complete
    # ------------------------------------------------------------------

    def pump(self) -> int:
        """Run one scheduling wave; returns jobs brought to terminal.

        Only meaningful in synchronous mode — with a worker pool the
        workers *are* the pump, and calling it would race them.
        """
        if self.workers is not None:
            raise ServiceError(
                "pump() drives a synchronous service; this one dispatches "
                "through worker threads — use result(), drain(), or "
                "shutdown() instead"
            )
        finished = 0
        waves: List[Wave] = []
        blocked: List[Job] = []

        while True:
            group = self.queue.pop_group(
                batch=self.batching, max_items=self.max_batch_items
            )
            if not group:
                break
            live = []
            for job in group:
                if self._expired(job):
                    finished += 1
                else:
                    live.append(job)
            if not live:
                continue
            placement = self.pool.acquire(live[0].request.slices)
            if placement is None:
                blocked.extend(live)
                break
            compiled = self._compiled[live[0].id]
            wave = Wave(jobs=live, placement=placement, compiled=compiled)
            # One lifecycle-scoped session per wave: slices are locked
            # here and guaranteed released after the wave, even if the
            # run raises (docs/execution.md).
            try:
                wave.session = self._open_wave_session(wave)
            except BaseException as exc:
                # The popped jobs must not vanish with the exception:
                # fail them before deciding whether to propagate.
                self._release_wave(wave)
                for job in live:
                    self._finish(job, JobState.FAILED,
                                 error=f"{type(exc).__name__}: {exc}")
                    finished += 1
                if isinstance(exc, ReproError):
                    logger.warning(
                        "programming a wave of %d job(s) failed: %s",
                        len(live), exc,
                    )
                    continue
                raise
            now = time.perf_counter()
            for job in live:
                job.state = JobState.RUNNING
                job.started_at = now
                if self.telemetry.enabled:
                    self.telemetry.histogram(
                        "service.queue_wait_s",
                        "seconds between submission and placement",
                    ).observe(now - job.submitted_at)
            waves.append(wave)

        self.queue.requeue(blocked)
        self._gauge_queue_depth()

        for wave in waves:
            assert wave.session is not None
            try:
                finished += self._execute_wave(
                    wave.jobs, wave.compiled, wave.session, wave=wave
                )
            finally:
                self._close_wave_session(wave)
                self._release_wave(wave)
        self._elastic_tick()
        return finished

    def _expired(self, job: Job) -> bool:
        limit = job.request.timeout_s
        if limit is None:
            return False
        waited = time.perf_counter() - job.submitted_at
        if waited <= limit:
            return False
        self._finish(
            job, JobState.TIMED_OUT,
            error=f"deadline of {limit}s exceeded after {waited:.3f}s",
        )
        return True

    # ------------------------------------------------------------------
    # Concurrent scheduler: worker claims + wave runner
    # ------------------------------------------------------------------

    def _next_wave(self) -> Optional[Wave]:
        """Claim one placed batch group; ``None`` when nothing placeable.

        The caller must hold ``self._lock`` (the worker pool's
        condition shares it): pop + expiry + placement + the RUNNING
        flip are one atomic step, so no job can be double-claimed,
        cancelled mid-claim, or lost between queue and pool.
        """
        while True:
            group = self.queue.pop_group(
                batch=self.batching, max_items=self.max_batch_items
            )
            if not group:
                return None
            live = [job for job in group if not self._expired(job)]
            if not live:
                continue
            placement = self.pool.acquire(live[0].request.slices)
            if placement is None:
                self.queue.requeue(live)
                return None
            now = time.perf_counter()
            for job in live:
                job.state = JobState.RUNNING
                job.started_at = now
            if self.telemetry.enabled:
                hist = self.telemetry.histogram(
                    "service.queue_wait_s",
                    "seconds between submission and placement",
                )
                for job in live:
                    hist.observe(now - job.submitted_at)
            self._gauge_queue_depth()
            return Wave(
                jobs=live, placement=placement,
                compiled=self._compiled[live[0].id],
            )

    def _run_wave(self, wave: Wave, worker: int) -> None:
        """Drive one claimed wave's whole lifecycle on a worker thread."""
        tel = self.telemetry
        jobs = wave.jobs
        compiled = wave.compiled
        try:
            if tel.enabled:
                tel.gauge(
                    "service.worker_busy",
                    "1 while this worker is executing a wave",
                ).set(1, worker=worker)
                assert self.workers is not None
                tel.gauge(
                    "service.workers_busy",
                    "workers currently executing waves",
                ).set(self.workers.busy)
                tel.counter(
                    "service.worker_waves", "waves dispatched, per worker"
                ).inc(worker=worker)
            try:
                try:
                    wave.session = self._open_wave_session(wave)
                except ReproError as exc:
                    logger.warning(
                        "worker %d: programming a wave of %d job(s) "
                        "failed: %s", worker, len(jobs), exc,
                    )
                    for job in jobs:
                        self._finish(job, JobState.FAILED,
                                     error=f"{type(exc).__name__}: {exc}")
                    return
                with tel.span(
                    "service.worker_wave", "service",
                    worker=worker, benchmark=compiled.benchmark,
                    jobs=len(jobs),
                ):
                    self._execute_wave(jobs, compiled, wave.session,
                                       wave=wave)
            finally:
                self._close_wave_session(wave)
                if tel.enabled:
                    tel.gauge(
                        "service.worker_busy",
                        "1 while this worker is executing a wave",
                    ).set(0, worker=worker)
        finally:
            self._release_wave(wave)

    def _open_wave_session(self, wave: Wave) -> ExecutionSession:
        """Enter and program one wave's session (static or elastic).

        Static mode is the all-cache-idle lifecycle: partition the
        placement's slices, write the full bitstream, and (in
        ``_close_wave_session``) tear everything down after the wave.
        Elastic mode leases the slices warm from the
        :class:`ElasticPartitioner` instead — the session *attaches*
        to the already-locked ways, programs live (delta reprogram on
        a warm slice, full write on a fresh one), and leaves the ways
        locked on close for the next wave to reuse.
        """
        placement, compiled = wave.placement, wave.compiled
        device = self.devices[placement.device]
        engine = wave.jobs[0].request.engine
        if self.elastic is None:
            session = ExecutionSession(
                device, self.partition,
                slices=placement.slices, engine=engine,
            )
            session.__enter__()
            # Admission already linted this program's schedule (the
            # report ships with the cache entry), so skip the
            # per-executor preflight repeat.
            session.program(
                compiled.to_accelerator(), compiled.mccs_per_tile,
                preflight=False,
            )
            return session
        lease = self.elastic.lease(
            placement,
            queue_depth=len(self.queue),
            deadline_slack_s=self._tightest_slack(wave.jobs),
            schedule=compiled.schedule,
            items=sum(job.request.items for job in wave.jobs),
        )
        wave.lease = lease
        session = ExecutionSession(
            device, lease.partition,
            slices=placement.slices, engine=engine,
            attach=True, release=False,
        )
        try:
            session.__enter__()
            reports = session.program(
                compiled.to_accelerator(), compiled.mccs_per_tile,
                preflight=False, live=True,
            )
        except BaseException:
            # The lease must not leak: an un-checked-in lease pins the
            # slice "active" forever and blocks drain/reclaim.
            session.close()
            self.elastic.checkin(lease)
            wave.lease = None
            raise
        # Bill the live-reprogram delta (config words that actually
        # travelled) onto the elastic cost/energy books.
        config_s = sum(r.config_time_s for r in reports)
        config_words = sum(r.config_words_total for r in reports)
        if config_words or config_s:
            self.elastic.bill_program(
                config_s,
                self.energy_model.reconfiguration_energy(
                    flushed_bytes=0, config_words=config_words
                ),
            )
        if all(r.delta and r.config_words_total == 0 for r in reports):
            with self._lock:
                self._counters["warm_waves"] += 1
        return session

    def _close_wave_session(self, wave: Wave) -> None:
        """Close a wave's session and check its lease back in."""
        if wave.session is not None:
            wave.session.close()
        if wave.lease is not None and self.elastic is not None:
            self.elastic.checkin(wave.lease)
            wave.lease = None

    def _tightest_slack(self, jobs: List[Job]) -> Optional[float]:
        """Seconds until the nearest deadline in ``jobs`` (None = none)."""
        now = time.perf_counter()
        slacks = [
            job.submitted_at + job.request.timeout_s - now
            for job in jobs if job.request.timeout_s is not None
        ]
        return min(slacks) if slacks else None

    def _elastic_tick(self) -> None:
        """Between-waves hook: return idle elastic ways to the cache."""
        if self.elastic is not None:
            self.elastic.maybe_reclaim()

    def _release_wave(self, wave: Wave) -> None:
        """Give a wave's slices back (idempotent) and wake claimers."""
        with self._lock:
            if wave.released:
                return
            wave.released = True
            self.pool.release(wave.placement)
        self._elastic_tick()
        if self.workers is not None:
            self.workers.kick()

    def _abandon_wave(self, wave: Wave, error: str) -> None:
        """Last resort when a worker's wave runner itself crashed:
        fail whatever jobs are not terminal yet and free the slices, so
        a bug in the runner costs one wave, never the pool."""
        for job in wave.jobs:
            if not job.done:
                self._finish(job, JobState.FAILED, error=error)
        self._release_wave(wave)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute_wave(
        self,
        group: List[Job],
        compiled: CompiledProgram,
        session: ExecutionSession,
        *,
        wave: Optional[Wave] = None,
    ) -> int:
        finished = 0
        # Deadline re-check at execution start: a job whose deadline
        # lapsed between dequeue/placement and this point must not run
        # (and must not be billed DONE) — it times out before the wave
        # touches its data.
        live = []
        for job in group:
            if self._expired(job):
                finished += 1
            else:
                live.append(job)
        if not live:
            return finished
        group = live

        placement = Placement(
            device=self.devices.index(session.device),
            slices=session.slice_indices,
        )
        scratchpad = session.controllers[0].slice.scratchpad
        assert scratchpad is not None
        pad_words = scratchpad.words
        pe = build_pe(compiled.benchmark)
        if self.telemetry.enabled:
            self.telemetry.histogram(
                "service.batch_size", "jobs merged into one wave",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            ).observe(float(len(group)))

        datasets = [
            job.request.dataset
            if job.request.dataset is not None
            else dataset_for(
                job.request.benchmark, job.request.items,
                seed=job.request.seed,
            )
            for job in group
        ]
        merged = datasets[0] if len(datasets) == 1 else Dataset.concat(datasets)
        limits = [
            job.submitted_at + job.request.timeout_s
            for job in group if job.request.timeout_s is not None
        ]
        deadline = min(limits) if limits else None

        try:
            with self.telemetry.span(
                "service.wave", "service",
                benchmark=compiled.benchmark, jobs=len(group),
                items=merged.items, device=placement.device,
            ):
                totals, mismatched, retries = self._run_with_retry(
                    session, merged, pad_words, pe, deadline=deadline
                )
                kernel = kernel_timing(
                    compiled.schedule,
                    items=merged.items,
                    slices=len(session.slice_indices),
                    tiles_per_slice=max(
                        session.program_reports[0].tiles, 1
                    ) if session.program_reports else 1,
                    scratchpad_service_words_per_cycle=(
                        session.device.scratchpad_service_rate(
                            session.partition
                        )
                    ),
                    clocking=session.device.system.clocking,
                )
                # Modeled overhead: flush/config of this wave's session
                # plus (elastic only) the way-transition cost of its
                # lease.  Warm waves pay neither, which is the whole
                # point of keeping ways locked between waves.
                overhead_s = (
                    sum(r.flush_time_s for r in session.setup_reports)
                    + sum(r.config_time_s for r in session.program_reports)
                    + (wave.lease.cost_s
                       if wave is not None and wave.lease is not None
                       else 0.0)
                )
                busy_s = (self.wave_latency_s or 0.0) + (
                    merged.items * (self.item_latency_s or 0.0)
                )
                if self.model_latency_scale:
                    busy_s += self.model_latency_scale * (
                        kernel.seconds + overhead_s
                    )
                if busy_s > 0:
                    self._sleep(busy_s)
        except _WaveDeadline:
            return finished + self._abort_wave_on_deadline(group)
        except ReproError as exc:
            logger.warning("wave of %d job(s) failed: %s", len(group), exc)
            for job in group:
                self._finish(job, JobState.FAILED,
                             error=f"{type(exc).__name__}: {exc}",
                             placement=placement, batch_size=len(group))
            return finished + len(group)

        clocking = session.device.system.clocking
        breakdown = self.energy_model.accelerator_energy(
            lut_config_reads=totals["lut_evaluations"],
            mac_ops=totals["mac_operations"],
            bus_words=totals["bus_words"],
            seconds=kernel.seconds,
            slices_active=len(session.slice_indices),
            uses_switch_fabric=(
                compiled.schedule.resources.mccs
                >= clocking.large_tile_threshold
            ),
        )
        wave_energy_j = breakdown.total_j + (
            wave.lease.energy_j
            if wave is not None and wave.lease is not None
            else 0.0
        )
        with self._lock:
            self._counters["retries"] += retries
            self._counters["batches"] += 1
            self._counters["energy_j"] += wave_energy_j
            self._counters["energy_items"] += merged.items
            if len(group) > 1:
                self._counters["batched_jobs"] += len(group)

        offset = 0
        for job, dataset in zip(group, datasets):
            window = range(offset, offset + dataset.items)
            bad = sum(1 for item in mismatched if item in window)
            offset += dataset.items
            self._finish(
                job, JobState.DONE,
                verified=bad == 0, mismatches=bad,
                invocations=dataset.items, retries=retries,
                batch_size=len(group), placement=placement,
            )
        return finished + len(group)

    def _abort_wave_on_deadline(self, group: List[Job]) -> int:
        """A wave overran its tightest deadline mid-execution.

        The expired jobs are ``TIMED_OUT``; jobs with slack left go
        back to the queue (an already-admitted job is never dropped).
        Returns the number brought to terminal.
        """
        now = time.perf_counter()
        finished = 0
        requeue: List[Job] = []
        for job in group:
            limit = job.request.timeout_s
            if limit is not None and now - job.submitted_at > limit:
                self._finish(
                    job, JobState.TIMED_OUT,
                    error=f"deadline of {limit}s exceeded during execution",
                )
                finished += 1
            else:
                job.state = JobState.PENDING
                requeue.append(job)
        if requeue:
            with self._lock:
                self._counters["requeued"] += len(requeue)
                self.queue.requeue(requeue)
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "service.requeues",
                    "jobs returned to the queue by a deadline abort",
                ).inc(len(requeue))
            if self.workers is not None:
                self.workers.kick()
        return finished

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with seeded jitter for attempt N (1-based)."""
        if self.retry_backoff_s <= 0:
            return 0.0
        delay = min(
            self.retry_backoff_s * (2.0 ** (attempt - 1)),
            self.retry_backoff_cap_s,
        )
        if self.retry_jitter:
            with self._lock:
                spread = 2.0 * self._rng.random() - 1.0
            delay *= 1.0 + self.retry_jitter * spread
        return delay

    def _run_with_retry(
        self,
        session: ExecutionSession,
        dataset: Dataset,
        pad_words: int,
        pe,
        deadline: Optional[float] = None,
    ) -> Tuple[Dict[str, int], List[int], int]:
        """Run a batch, splitting it in half on scratchpad overflow.

        ``CapacityError`` from layout planning is transient — a smaller
        batch fits — so each occurrence (bounded by ``max_retries``)
        backs off exponentially (doubling from ``retry_backoff_s`` up
        to ``retry_backoff_cap_s``, with seeded ±``retry_jitter``
        spread so concurrent workers do not retry in lock-step), then
        splits the offending chunk and resubmits; chunk order preserves
        item order, so mismatch indices stay batch-global.

        ``deadline`` is the wave's tightest end-to-end deadline (an
        absolute ``perf_counter`` instant): it is checked before every
        chunk and before every backoff sleep, raising
        :class:`_WaveDeadline` rather than running work whose requester
        already gave up.
        """
        attempts = 0
        pending = deque([dataset])
        totals = dict(_ZERO_TOTALS)
        mismatched: List[int] = []
        done_items = 0
        while pending:
            if deadline is not None and time.perf_counter() > deadline:
                raise _WaveDeadline()
            chunk = pending.popleft()
            try:
                layout = plan_layout(chunk, pad_words, pe=pe)
            except CapacityError:
                attempts += 1
                if self.telemetry.enabled:
                    self.telemetry.counter(
                        "service.capacity_retries",
                        "scratchpad overflows resubmitted at half size",
                    ).inc()
                if attempts > self.max_retries or chunk.items <= 1:
                    raise
                delay = self._backoff_delay(attempts)
                if (
                    deadline is not None
                    and time.perf_counter() + delay > deadline
                ):
                    raise _WaveDeadline()
                half = chunk.items // 2
                logger.info(
                    "batch of %d items overflowed the scratchpad; "
                    "retrying as %d + %d after %.3fs (attempt %d/%d)",
                    chunk.items, half, chunk.items - half, delay,
                    attempts, self.max_retries,
                )
                if delay > 0:
                    if self.telemetry.enabled:
                        self.telemetry.counter(
                            "service.retry_backoff_s",
                            "seconds spent in retry backoff",
                        ).inc(delay)
                    self._sleep(delay)
                pending.appendleft(chunk.slice(half, chunk.items))
                pending.appendleft(chunk.slice(0, half))
                continue
            chunk_totals, bad = session.execute(chunk, layout, pe=pe)
            for key in totals:
                totals[key] += chunk_totals[key]
            mismatched.extend(done_items + item for item in bad)
            done_items += chunk.items
        return totals, mismatched, attempts

    # ------------------------------------------------------------------
    # Completion + observability
    # ------------------------------------------------------------------

    def _finish(self, job: Job, state: JobState, **fields) -> None:
        with self._job_cv:
            if job.done:
                # A racing finisher (cancel vs worker, abandon vs the
                # normal path) got here first; the job keeps its first
                # terminal state.
                return
            job.state = state
            job.finished_at = time.perf_counter()
            latency = job.finished_at - job.submitted_at
            queue_s = (
                job.started_at - job.submitted_at
                if job.started_at is not None else None
            )
            placement = fields.pop("placement", None)
            job.result = JobResult(
                job_id=job.id,
                state=state,
                benchmark=job.request.benchmark,
                items=job.request.items,
                latency_s=latency,
                queue_s=queue_s,
                cache_hit=job.cache_hit,
                placement=(
                    (placement.device, placement.slices) if placement else None
                ),
                **fields,
            )
            self._compiled.pop(job.id, None)
            key = {
                JobState.DONE: "completed",
                JobState.REJECTED: "rejected",
                JobState.FAILED: "failed",
                JobState.CANCELLED: "cancelled",
                JobState.TIMED_OUT: "timed_out",
                JobState.SATURATED: "saturated",
            }[state]
            self._counters[key] += 1
            if state is JobState.DONE:
                self.latencies.add(latency)
            self._job_cv.notify_all()
        if self.done_callback is not None:
            try:
                self.done_callback(job)
            except Exception:
                logger.exception(
                    "done_callback failed for job %d (ignored)", job.id
                )
        if self.telemetry.enabled:
            self.telemetry.counter(
                "service.jobs_finished", "jobs by terminal state"
            ).inc(state=key)
            self.telemetry.histogram(
                "service.latency_s", "end-to-end job latency"
            ).observe(latency)
            self._gauge_queue_depth()
            # Retroactive span from the timestamps the job already
            # carries: submit-to-terminal, covering queue + run.
            self.telemetry.record_span(
                "job", job.submitted_at, job.finished_at, "service",
                job_id=job.id, benchmark=job.request.benchmark,
                items=job.request.items, state=key,
            )

    def _gauge_queue_depth(self) -> None:
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "service.queue_depth", "jobs waiting for placement"
            ).set(len(self.queue))

    def stats(self) -> ServiceStats:
        elastic_counters: Dict[str, float] = (
            self.elastic.counters() if self.elastic is not None else {}
        )
        locked_ways = (
            self.elastic.locked_ways() if self.elastic is not None else 0
        )
        with self._lock:
            energy_j = self._counters["energy_j"]
            energy_items = self._counters["energy_items"]
            return ServiceStats(
                submitted=self._counters["submitted"],
                completed=self._counters["completed"],
                rejected=self._counters["rejected"],
                failed=self._counters["failed"],
                cancelled=self._counters["cancelled"],
                timed_out=self._counters["timed_out"],
                saturated=self._counters["saturated"],
                requeued=self._counters["requeued"],
                retries=self._counters["retries"],
                batches=self._counters["batches"],
                batched_jobs=self._counters["batched_jobs"],
                queue_depth=len(self.queue),
                running=sum(
                    1 for job in self.jobs.values()
                    if job.state is JobState.RUNNING
                ),
                workers=self.worker_count,
                workers_busy=(
                    self.workers.busy if self.workers is not None else 0
                ),
                slice_utilization=self.pool.utilization(),
                cache=self.cache.stats(),
                latency_p50_s=self.latencies.p50,
                latency_p95_s=self.latencies.p95,
                latency_samples=self.latencies.sample_count,
                ways_resized=int(elastic_counters.get("ways_resized", 0)),
                resize_cost_s=float(
                    elastic_counters.get("resize_cost_s", 0.0)
                ),
                warm_attaches=int(
                    elastic_counters.get("warm_attaches", 0)
                ),
                warm_waves=self._counters["warm_waves"],
                locked_ways=locked_ways,
                energy_j=energy_j,
                items_per_joule=(
                    energy_items / energy_j if energy_j > 0 else 0.0
                ),
            )

    # ------------------------------------------------------------------
    # Drain / shutdown
    # ------------------------------------------------------------------

    def drain(self, timeout_s: Optional[float] = None) -> None:
        """Block until every submitted job is terminal.

        Synchronous mode pumps inline; concurrent mode waits for the
        workers to empty the queue.  Raises :class:`ServiceError` if
        ``timeout_s`` elapses with jobs still outstanding.
        """
        deadline = (
            time.perf_counter() + timeout_s if timeout_s is not None else None
        )
        if self.workers is None:
            while True:
                with self._lock:
                    if all(job.done for job in self.jobs.values()):
                        return
                if deadline is not None and time.perf_counter() > deadline:
                    raise ServiceError(f"drain did not finish in {timeout_s}s")
                self.pump()
        with self._job_cv:
            while not all(job.done for job in self.jobs.values()):
                if deadline is not None and time.perf_counter() > deadline:
                    raise ServiceError(f"drain did not finish in {timeout_s}s")
                self._job_cv.wait(timeout=0.1)

    def shutdown(self, *, drain: bool = True,
                 timeout_s: Optional[float] = None) -> None:
        """Stop the service and unlock every device way (idempotent).

        ``drain=True`` finishes the queued work first; ``drain=False``
        stops after in-flight waves only (a wave is never interrupted
        mid-run — its session teardown is what guarantees the ways come
        back).  Jobs still pending afterwards are ``CANCELLED``, so no
        submitted job is ever left without a result.
        """
        if self._closed:
            return
        if self.workers is not None:
            self.workers.stop(drain=drain, timeout_s=timeout_s)
        elif drain:
            self.drain(timeout_s=timeout_s)
        with self._lock:
            self._closed = True
            leftovers = [job for job in self.jobs.values() if not job.done]
        for job in leftovers:
            self._finish(job, JobState.CANCELLED, error="service shut down")
        if self.elastic is not None:
            try:
                self.elastic.drain()
            except ServiceError:
                # A crashed wave can leave a lease marked active; the
                # device-wide teardown below force-frees its ways.
                logger.warning("elastic drain found active leases")
        for device in self.devices:
            device._teardown_slices(range(device.slice_count))

    def close(self) -> None:
        """Stop now (no drain) and release every device way."""
        self.shutdown(drain=False)
