"""``AcceleratorService``: device pool + job scheduler + admission.

The runtime between many callers and a pool of
:class:`~repro.freac.device.FreacDevice` instances.  One pump cycle
(= one *wave*) does:

1. **Admission-checked dequeue** — pop the highest-priority batch
   group (same-benchmark jobs merge into one run), expiring jobs whose
   queue-wait deadline passed;
2. **Placement** — claim disjoint slices from the pool (best-fit
   packing, so independent jobs co-reside on one device), partition
   exactly those slices and program them from the compiled-program
   cache entry;
3. **Execution** — fill scratchpads, run, verify, with bounded retry:
   a :class:`~repro.errors.CapacityError` (batch too big for the
   scratchpad) resubmits the chunk at half size instead of failing;
4. **Completion** — per-job results, latency samples, slice release.

Everything is single-process and synchronous: ``pump()`` runs waves
inline and ``result()`` pumps until the job is terminal.  That keeps
the model deterministic (this is a simulator, not an RPC server) while
exercising the real multi-tenant mechanics: priority, co-residency,
batching, rejection, timeout, retry.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from typing import Dict, List, Optional, Tuple, Union

from ..circuits.library import build_pe
from ..errors import CapacityError, ReproError, RequestError, ServiceError
from ..freac.compute_slice import SlicePartition
from ..freac.device import FreacDevice
from ..freac.engine import DEFAULT_ENGINE, validate_engine
from ..freac.runner import plan_layout
from ..freac.session import ExecutionSession
from ..params import SystemParams
from ..telemetry import Telemetry
from ..telemetry.core import resolve
from ..workloads.datagen import Dataset, dataset_for
from .jobs import Job, JobQueue, JobRequest, JobResult, JobState
from .placement import Placement, SlicePool
from .programs import CompiledProgram, ProgramCache
from .stats import LatencyTracker, ServiceStats

logger = logging.getLogger("repro.service")

_ZERO_TOTALS = {
    "invocations": 0,
    "lut_evaluations": 0,
    "mac_operations": 0,
    "bus_words": 0,
}


class AcceleratorService:
    """A multi-tenant serving layer over a pool of FReaC devices."""

    def __init__(
        self,
        *,
        devices: int = 1,
        system: Optional[SystemParams] = None,
        partition: Optional[SlicePartition] = None,
        cache: Optional[ProgramCache] = None,
        cache_capacity: int = 16,
        cache_dir: Optional[str] = None,
        max_retries: int = 2,
        batching: bool = True,
        max_batch_items: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        if devices < 1:
            raise ServiceError("the service needs at least one device")
        self.telemetry = resolve(telemetry)
        self.partition = partition or SlicePartition(
            compute_ways=4, scratchpad_ways=4
        )
        if self.partition.scratchpad_ways == 0:
            raise ServiceError("the service partition needs scratchpad ways")
        self.devices = [
            FreacDevice(system, telemetry=self.telemetry)
            for _ in range(devices)
        ]
        self.pool = SlicePool([d.slice_count for d in self.devices])
        # Not `cache or ...`: an empty ProgramCache is falsy (len == 0).
        self.cache = (
            cache if cache is not None else ProgramCache(cache_capacity, cache_dir)
        )
        self.max_retries = max_retries
        self.batching = batching
        self.max_batch_items = max_batch_items
        self.engine = validate_engine(engine)

        self.queue = JobQueue()
        self.jobs: Dict[int, Job] = {}
        self._compiled: Dict[int, CompiledProgram] = {}
        self._next_id = 1
        self.latencies = LatencyTracker()
        self._counters = {
            "submitted": 0, "completed": 0, "rejected": 0, "failed": 0,
            "cancelled": 0, "timed_out": 0, "retries": 0, "batches": 0,
            "batched_jobs": 0,
        }

    # ------------------------------------------------------------------
    # Front end: submit / result / cancel
    # ------------------------------------------------------------------

    def submit(
        self,
        benchmark: str,
        items: int,
        *,
        priority: int = 0,
        mccs_per_tile: int = 1,
        lut_inputs: int = 5,
        slices: int = 1,
        timeout_s: Optional[float] = None,
        seed: int = 0,
        dataset: Optional[Dataset] = None,
        engine: Optional[str] = None,
    ) -> Job:
        """Admit one request; returns its :class:`Job` immediately.

        Invalid *requests* raise :class:`~repro.errors.RequestError`;
        programs whose lint reports carry error findings are admitted
        as ``REJECTED`` jobs whose result holds the full
        :class:`~repro.analysis.AnalysisReport` — admission never
        crashes mid-run.
        """
        if items < 1:
            raise RequestError("a job needs at least one item")
        if not 1 <= slices <= self.pool.max_slices:
            raise RequestError(
                f"a job may use 1..{self.pool.max_slices} slices, "
                f"not {slices}"
            )
        if dataset is not None:
            if dataset.items != items:
                raise RequestError(
                    f"dataset has {dataset.items} items but {items} "
                    "were requested"
                )
            if dataset.benchmark != benchmark.upper():
                raise RequestError(
                    f"dataset is for {dataset.benchmark}, "
                    f"not {benchmark.upper()}"
                )

        hits_before = self.cache.hits
        try:
            compiled = self.cache.get_or_compile(
                benchmark, lut_inputs=lut_inputs, mccs_per_tile=mccs_per_tile
            )
        except KeyError as exc:
            raise RequestError(str(exc)) from None

        request = JobRequest(
            benchmark=benchmark.upper(), items=items, priority=priority,
            mccs_per_tile=mccs_per_tile, lut_inputs=lut_inputs,
            slices=slices, timeout_s=timeout_s, seed=seed, dataset=dataset,
            engine=validate_engine(engine) if engine else self.engine,
        )
        job = Job(
            id=self._next_id, request=request,
            submitted_at=time.perf_counter(),
            cache_hit=self.cache.hits > hits_before,
        )
        self._next_id += 1
        self.jobs[job.id] = job
        self._counters["submitted"] += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "service.submissions", "jobs offered to admission"
            ).inc(benchmark=request.benchmark)

        if not compiled.ok:
            report = compiled.admission_report()
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "service.admission", "admission outcomes"
                ).inc(outcome="rejected")
            self._finish(job, JobState.REJECTED, admission=report,
                         error=f"{len(report.errors)} lint error(s)")
            return job

        if self.telemetry.enabled:
            self.telemetry.counter(
                "service.admission", "admission outcomes"
            ).inc(outcome="accepted")
        self._compiled[job.id] = compiled
        self.queue.push(job)
        return job

    def submit_request(self, request) -> Job:
        """Admit one :class:`repro.request.RunRequest`.

        The CLI front ends build a validated request object once and
        hand it over whole instead of re-threading each knob.
        """
        return self.submit(
            request.benchmark, request.items, **request.submit_kwargs()
        )

    def result(self, job: Union[Job, int],
               timeout_s: Optional[float] = None) -> JobResult:
        """Block (pumping the scheduler) until the job is terminal."""
        job = self._resolve(job)
        deadline = (
            time.perf_counter() + timeout_s if timeout_s is not None else None
        )
        while not job.done:
            if deadline is not None and time.perf_counter() > deadline:
                raise ServiceError(
                    f"job {job.id} not finished within {timeout_s}s"
                )
            self.pump()
        assert job.result is not None
        return job.result

    def cancel(self, job: Union[Job, int]) -> bool:
        """Cancel a still-queued job; running/terminal jobs are not."""
        job = self._resolve(job)
        if job.state is not JobState.PENDING:
            return False
        self._finish(job, JobState.CANCELLED, error="cancelled by caller")
        return True

    def _resolve(self, job: Union[Job, int]) -> Job:
        if isinstance(job, Job):
            return job
        try:
            return self.jobs[job]
        except KeyError:
            raise ServiceError(f"unknown job id {job!r}") from None

    # ------------------------------------------------------------------
    # Scheduler: one pump = place a wave, execute it, complete it
    # ------------------------------------------------------------------

    def pump(self) -> int:
        """Run one scheduling wave; returns jobs brought to terminal."""
        finished = 0
        waves: List[
            Tuple[List[Job], Placement, CompiledProgram, ExecutionSession]
        ] = []
        blocked: List[Job] = []

        while True:
            group = self.queue.pop_group(
                batch=self.batching, max_items=self.max_batch_items
            )
            if not group:
                break
            live = []
            for job in group:
                if self._expired(job):
                    finished += 1
                else:
                    live.append(job)
            if not live:
                continue
            placement = self.pool.acquire(live[0].request.slices)
            if placement is None:
                blocked.extend(live)
                break
            compiled = self._compiled[live[0].id]
            # One lifecycle-scoped session per wave: slices are locked
            # here and guaranteed released after the wave, even if the
            # run raises (docs/execution.md).
            session = ExecutionSession(
                self.devices[placement.device], self.partition,
                slices=placement.slices, engine=live[0].request.engine,
            )
            session.__enter__()
            try:
                # Admission already linted this program's schedule (the
                # report ships with the cache entry), so skip the
                # per-executor preflight repeat.
                session.program(
                    compiled.to_accelerator(), compiled.mccs_per_tile,
                    preflight=False,
                )
            except BaseException:
                session.close()
                self.pool.release(placement)
                raise
            now = time.perf_counter()
            for job in live:
                job.state = JobState.RUNNING
                job.started_at = now
                if self.telemetry.enabled:
                    self.telemetry.histogram(
                        "service.queue_wait_s",
                        "seconds between submission and placement",
                    ).observe(now - job.submitted_at)
            waves.append((live, placement, compiled, session))

        self.queue.requeue(blocked)

        for group, placement, compiled, session in waves:
            try:
                finished += self._execute_wave(group, compiled, session)
            finally:
                session.close()
                self.pool.release(placement)
        return finished

    def _expired(self, job: Job) -> bool:
        limit = job.request.timeout_s
        if limit is None:
            return False
        waited = time.perf_counter() - job.submitted_at
        if waited <= limit:
            return False
        self._finish(
            job, JobState.TIMED_OUT,
            error=f"queued {waited:.3f}s, deadline was {limit}s",
        )
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute_wave(
        self,
        group: List[Job],
        compiled: CompiledProgram,
        session: ExecutionSession,
    ) -> int:
        placement = Placement(
            device=self.devices.index(session.device),
            slices=session.slice_indices,
        )
        scratchpad = session.controllers[0].slice.scratchpad
        assert scratchpad is not None
        pad_words = scratchpad.words
        pe = build_pe(compiled.benchmark)
        if self.telemetry.enabled:
            self.telemetry.histogram(
                "service.batch_size", "jobs merged into one wave",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            ).observe(float(len(group)))

        datasets = [
            job.request.dataset
            if job.request.dataset is not None
            else dataset_for(
                job.request.benchmark, job.request.items,
                seed=job.request.seed,
            )
            for job in group
        ]
        merged = datasets[0] if len(datasets) == 1 else Dataset.concat(datasets)

        try:
            with self.telemetry.span(
                "service.wave", "service",
                benchmark=compiled.benchmark, jobs=len(group),
                items=merged.items, device=placement.device,
            ):
                totals, mismatched, retries = self._run_with_retry(
                    session, merged, pad_words, pe
                )
        except ReproError as exc:
            logger.warning("wave of %d job(s) failed: %s", len(group), exc)
            for job in group:
                self._finish(job, JobState.FAILED,
                             error=f"{type(exc).__name__}: {exc}",
                             placement=placement, batch_size=len(group))
            return len(group)

        self._counters["retries"] += retries
        self._counters["batches"] += 1
        if len(group) > 1:
            self._counters["batched_jobs"] += len(group)

        offset = 0
        for job, dataset in zip(group, datasets):
            window = range(offset, offset + dataset.items)
            bad = sum(1 for item in mismatched if item in window)
            offset += dataset.items
            self._finish(
                job, JobState.DONE,
                verified=bad == 0, mismatches=bad,
                invocations=dataset.items, retries=retries,
                batch_size=len(group), placement=placement,
            )
        return len(group)

    def _run_with_retry(
        self,
        session: ExecutionSession,
        dataset: Dataset,
        pad_words: int,
        pe,
    ) -> Tuple[Dict[str, int], List[int], int]:
        """Run a batch, splitting it in half on scratchpad overflow.

        ``CapacityError`` from layout planning is transient — a smaller
        batch fits — so each occurrence (bounded by ``max_retries``)
        splits the offending chunk and resubmits; chunk order preserves
        item order, so mismatch indices stay batch-global.
        """
        attempts = 0
        pending = deque([dataset])
        totals = dict(_ZERO_TOTALS)
        mismatched: List[int] = []
        done_items = 0
        while pending:
            chunk = pending.popleft()
            try:
                layout = plan_layout(chunk, pad_words, pe=pe)
            except CapacityError:
                attempts += 1
                if self.telemetry.enabled:
                    self.telemetry.counter(
                        "service.capacity_retries",
                        "scratchpad overflows resubmitted at half size",
                    ).inc()
                if attempts > self.max_retries or chunk.items <= 1:
                    raise
                half = chunk.items // 2
                logger.info(
                    "batch of %d items overflowed the scratchpad; "
                    "retrying as %d + %d (attempt %d/%d)",
                    chunk.items, half, chunk.items - half,
                    attempts, self.max_retries,
                )
                pending.appendleft(chunk.slice(half, chunk.items))
                pending.appendleft(chunk.slice(0, half))
                continue
            chunk_totals, bad = session.execute(chunk, layout, pe=pe)
            for key in totals:
                totals[key] += chunk_totals[key]
            mismatched.extend(done_items + item for item in bad)
            done_items += chunk.items
        return totals, mismatched, attempts

    # ------------------------------------------------------------------
    # Completion + observability
    # ------------------------------------------------------------------

    def _finish(self, job: Job, state: JobState, **fields) -> None:
        job.state = state
        job.finished_at = time.perf_counter()
        latency = job.finished_at - job.submitted_at
        queue_s = (
            job.started_at - job.submitted_at
            if job.started_at is not None else None
        )
        placement = fields.pop("placement", None)
        job.result = JobResult(
            job_id=job.id,
            state=state,
            benchmark=job.request.benchmark,
            items=job.request.items,
            latency_s=latency,
            queue_s=queue_s,
            cache_hit=job.cache_hit,
            placement=(
                (placement.device, placement.slices) if placement else None
            ),
            **fields,
        )
        self._compiled.pop(job.id, None)
        key = {
            JobState.DONE: "completed",
            JobState.REJECTED: "rejected",
            JobState.FAILED: "failed",
            JobState.CANCELLED: "cancelled",
            JobState.TIMED_OUT: "timed_out",
        }[state]
        self._counters[key] += 1
        if state is JobState.DONE:
            self.latencies.add(latency)
        if self.telemetry.enabled:
            self.telemetry.counter(
                "service.jobs_finished", "jobs by terminal state"
            ).inc(state=key)
            self.telemetry.histogram(
                "service.latency_s", "end-to-end job latency"
            ).observe(latency)
            # Retroactive span from the timestamps the job already
            # carries: submit-to-terminal, covering queue + run.
            self.telemetry.record_span(
                "job", job.submitted_at, job.finished_at, "service",
                job_id=job.id, benchmark=job.request.benchmark,
                items=job.request.items, state=key,
            )

    def stats(self) -> ServiceStats:
        return ServiceStats(
            submitted=self._counters["submitted"],
            completed=self._counters["completed"],
            rejected=self._counters["rejected"],
            failed=self._counters["failed"],
            cancelled=self._counters["cancelled"],
            timed_out=self._counters["timed_out"],
            retries=self._counters["retries"],
            batches=self._counters["batches"],
            batched_jobs=self._counters["batched_jobs"],
            queue_depth=len(self.queue),
            running=sum(
                1 for job in self.jobs.values()
                if job.state is JobState.RUNNING
            ),
            slice_utilization=self.pool.utilization(),
            cache=self.cache.stats(),
            latency_p50_s=self.latencies.p50,
            latency_p95_s=self.latencies.p95,
            latency_samples=self.latencies.sample_count,
        )

    def close(self) -> None:
        """Release every device way back to plain cache mode."""
        for device in self.devices:
            device._teardown_slices(range(device.slice_count))
