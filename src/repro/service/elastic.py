"""Elastic cache/compute way partitioning for the serving layer.

The paper's ways are statically cache *or* compute; this module makes
the split dynamic, the way ARCANE makes cache/accelerator partitioning
a runtime, software-driven decision.  An :class:`ElasticPartitioner`
sits between the service's wave dispatch and the per-slice CC Ctrls:

* between waves it *grows* the compute-way allocation of a slice under
  queue pressure (queue depth, arrival rate, deadline slack) and
  *shrinks* it — ultimately returning every locked way to the cache
  via ``CacheSlice.unlock_ways`` — when the slice idles;
* a wave *leases* its slices warm: the locked ways and the resident
  program survive from wave to wave, so a repeat program costs
  nothing and a different program is swapped by a **live reprogram**
  (``ComputeClusterController.reprogram``) that rewrites only the
  ConfigImage delta instead of a full teardown→setup→program cycle;
* every transition is billed the paper's costs — DRAM flush time for
  dirty lines entering a locked way, ``config_time_s`` for the delta
  bitstream, and flush/eviction energy from :mod:`repro.power` — and a
  hysteresis band (high/low water marks plus a per-slice dwell time)
  keeps the policy from thrashing;
* an energy-aware placement hint (:func:`shape_choices` /
  :func:`energy_shape_hint`) evaluates candidate shapes — few wide-MCC
  tiles at 3 GHz vs many small tiles at 4 GHz — and caps growth at the
  smallest allocation that achieves peak items/s-per-watt, so the
  policy never locks ways that only add leakage.

Thread model: the partitioner has one internal lock and is a *leaf* —
it never calls back into the service, so the service lock (or the pool
lock) may be held while calling in, never the reverse.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import ServiceError
from ..folding.schedule import FoldingSchedule
from ..freac.ccctrl import ControllerState
from ..freac.compute_slice import SlicePartition
from ..freac.device import FreacDevice
from ..freac.timing import kernel_timing
from ..params import FreacClocking
from ..power.energy import EnergyModel
from .placement import Placement


@dataclass(frozen=True)
class ElasticConfig:
    """Tuning knobs of the elastic policy (picklable for shards).

    ``min_compute_ways``/``max_compute_ways`` bound the per-slice
    allocation; growth jumps to the load's desired shape while shrink
    steps down one way-pair at a time.  The hysteresis band is
    ``low_water < load < high_water`` (no change inside it) plus
    ``min_dwell_s`` between resizes of the same slice.  A slice idle
    for ``idle_release_s`` is torn down entirely, returning its ways
    to the cache.
    """

    min_compute_ways: int = 2
    max_compute_ways: int = 16
    #: None = keep the service's base scratchpad allocation.
    scratchpad_ways: Optional[int] = None
    #: Queued jobs that justify one more way pair of compute.
    grow_depth_per_step: int = 2
    high_water: float = 1.0
    low_water: float = 0.5
    min_dwell_s: float = 0.02
    idle_release_s: float = 0.25
    #: Arrivals are converted to expected queue growth over this window.
    arrival_horizon_s: float = 0.05
    #: Jobs whose deadline slack falls below this boost the load.
    deadline_slack_s: float = 0.25
    #: Latency of re-steering one way's allocation registers (drowsy
    #: wake + tag-mode update, ~8 cycles at 4 GHz); guarantees every
    #: resize has a nonzero billed cost even when no dirty lines
    #: needed flushing.
    way_switch_s: float = 2e-9
    #: Cap growth at the most items/s-per-watt-efficient shape.
    energy_aware: bool = True

    def __post_init__(self) -> None:
        if self.min_compute_ways < 2 or self.min_compute_ways % 2:
            raise ServiceError("min_compute_ways must be an even count >= 2")
        if self.max_compute_ways % 2:
            raise ServiceError("max_compute_ways must be even")
        if self.max_compute_ways < self.min_compute_ways:
            raise ServiceError("max_compute_ways < min_compute_ways")
        if self.low_water > self.high_water:
            raise ServiceError("low_water must not exceed high_water")
        if self.way_switch_s <= 0:
            raise ServiceError("way_switch_s must be positive")

    def target_compute_ways(
        self, current: int, load: float, cap: int
    ) -> int:
        """The policy core: next allocation for one slice.

        ``load`` is queued-work pressure in grow steps (1.0 == one
        more way pair's worth).  Growth happens only above the high
        water mark and jumps to the desired shape; shrink happens only
        below the low water mark and steps down one pair, so a load
        oscillating inside the band never moves the allocation.
        """
        desired = self.min_compute_ways + 2 * int(load)
        desired = max(self.min_compute_ways, min(desired, cap))
        if desired > current and load >= self.high_water:
            return desired
        if desired < current and load <= self.low_water:
            return max(current - 2, self.min_compute_ways)
        return current


@dataclass(frozen=True)
class ShapeChoice:
    """One candidate accelerator shape and its modelled efficiency."""

    compute_ways: int
    tile_mccs: int
    tiles: int
    clock_hz: float
    items_per_s: float
    watts: float
    items_per_joule: float


def shape_choices(
    schedule: FoldingSchedule,
    *,
    scratchpad_ways: int,
    total_ways: int = 20,
    items: int = 256,
    min_compute_ways: int = 2,
    max_compute_ways: Optional[int] = None,
    clocking: Optional[FreacClocking] = None,
    energy: Optional[EnergyModel] = None,
) -> List[ShapeChoice]:
    """Model every even compute-way allocation for one schedule.

    Wide tiles (>= 16 MCCs) drop to 3 GHz and burn switch-fabric link
    power; small tiles run at 4 GHz.  Throughput saturates at the
    operand-bus bound, after which additional ways only add leakage —
    which is exactly what ``items_per_joule`` exposes.
    """
    clocking = clocking or FreacClocking()
    energy = energy or EnergyModel()
    tile = schedule.resources.mccs
    ceiling = 2 * ((total_ways - scratchpad_ways) // 2)
    if max_compute_ways is not None:
        ceiling = min(ceiling, max_compute_ways)
    choices: List[ShapeChoice] = []
    for ways in range(max(2, min_compute_ways), ceiling + 1, 2):
        partition = SlicePartition(ways, scratchpad_ways, total_ways)
        tiles = partition.mccs() // tile
        if tiles < 1:
            continue
        timing = kernel_timing(
            schedule,
            items=items,
            slices=1,
            tiles_per_slice=tiles,
            scratchpad_service_words_per_cycle=float(
                min(max(scratchpad_ways, 1), 4)
            ),
            clocking=clocking,
        )
        seconds = timing.seconds
        if seconds <= 0:
            continue
        luts_active = schedule.resources.luts_per_mcc * tile
        breakdown = energy.accelerator_energy(
            lut_config_reads=items * schedule.fold_cycles * luts_active,
            mac_ops=items * schedule.fold_cycles * tile,
            bus_words=items * schedule.bus_words,
            seconds=seconds,
            slices_active=1,
            uses_switch_fabric=tile >= clocking.large_tile_threshold,
        )
        total_j = breakdown.total_j
        choices.append(
            ShapeChoice(
                compute_ways=ways,
                tile_mccs=tile,
                tiles=tiles,
                clock_hz=timing.clock_hz,
                items_per_s=timing.throughput_items_s,
                watts=breakdown.average_power_w(seconds),
                items_per_joule=items / total_j if total_j > 0 else 0.0,
            )
        )
    return choices


def energy_shape_hint(
    schedules: Sequence[FoldingSchedule],
    **kwargs,
) -> Optional[ShapeChoice]:
    """The most items/s-per-watt-efficient shape across tile sizes.

    Give it the same program scheduled at several ``mccs_per_tile``
    values (e.g. 1 and 16) and it answers the paper's placement
    question: many small 4 GHz tiles or a few wide 3 GHz tiles.
    """
    best: Optional[ShapeChoice] = None
    for schedule in schedules:
        for choice in shape_choices(schedule, **kwargs):
            if best is None or choice.items_per_joule > best.items_per_joule:
                best = choice
    return best


@dataclass
class ElasticLease:
    """One wave's claim on warm, elastic-partitioned slices."""

    placement: Placement
    partition: SlicePartition
    #: Billed transition latency (flush + way switching) for this lease.
    cost_s: float = 0.0
    #: Billed transition energy (flush/eviction traffic), joules.
    energy_j: float = 0.0
    ways_changed: int = 0
    warm_slices: int = 0
    cold_slices: int = 0
    resizes: int = 0


@dataclass
class _SliceState:
    """Partitioner-side view of one (device, slice)."""

    active: bool = False
    last_used: float = 0.0
    last_resize: float = -1.0e9


class ElasticPartitioner:
    """Grow/shrink the compute way split per slice, between waves.

    All public methods are thread-safe; the internal lock is a leaf
    (never calls out to service/pool code), so callers may hold their
    own locks while calling in.
    """

    #: Mutated only under ``self._lock`` — enforced by
    #: ``repro.analysis.selfcheck`` in CI.
    _GUARDED_BY_LOCK = ("_slices", "_arrivals", "_counters", "_hint_cache")

    def __init__(
        self,
        devices: Sequence[FreacDevice],
        base_partition: SlicePartition,
        config: Optional[ElasticConfig] = None,
        *,
        energy: Optional[EnergyModel] = None,
        clocking: Optional[FreacClocking] = None,
        clock=time.monotonic,
    ) -> None:
        self.devices = list(devices)
        if not self.devices:
            raise ServiceError("the elastic partitioner needs devices")
        self.config = config or ElasticConfig()
        self.energy = energy or EnergyModel()
        self.clocking = clocking or FreacClocking()
        self.base = base_partition
        self.scratch_ways = (
            self.config.scratchpad_ways
            if self.config.scratchpad_ways is not None
            else base_partition.scratchpad_ways
        )
        self.total_ways = base_partition.total_ways
        ceiling = 2 * ((self.total_ways - self.scratch_ways) // 2)
        self.max_ways = min(self.config.max_compute_ways, ceiling)
        self.min_ways = min(self.config.min_compute_ways, self.max_ways)
        if self.min_ways < 2:
            raise ServiceError(
                f"{self.scratch_ways} scratchpad ways leave no room for "
                "a compute way pair"
            )
        self._clock = clock
        self._lock = threading.RLock()
        self._slices: Dict[Tuple[int, int], _SliceState] = {}
        self._arrivals: Deque[float] = deque(maxlen=512)
        self._hint_cache: Dict[Tuple[int, int, int, int], int] = {}
        self._counters: Dict[str, float] = {
            "ways_resized": 0,
            "resizes": 0,
            "resize_cost_s": 0.0,
            "resize_energy_j": 0.0,
            "warm_attaches": 0,
            "cold_setups": 0,
            "reclaims": 0,
        }

    # ------------------------------------------------------------------
    # Pressure signals
    # ------------------------------------------------------------------

    def note_submit(self) -> None:
        """Record one job arrival (feeds the arrival-rate estimate)."""
        with self._lock:
            self._arrivals.append(self._clock())

    def arrival_rate(self, window_s: float = 1.0) -> float:
        """Submissions per second over the trailing window."""
        now = self._clock()
        with self._lock:
            recent = sum(1 for t in self._arrivals if now - t <= window_s)
        return recent / window_s if window_s > 0 else 0.0

    def _load(
        self, queue_depth: int, deadline_slack_s: Optional[float]
    ) -> float:
        """Queued-work pressure in grow steps.  Caller must hold
        ``self._lock`` (reads the arrival deque)."""
        cfg = self.config
        now = self._clock()
        expected = sum(
            1 for t in self._arrivals if now - t <= cfg.arrival_horizon_s
        )
        load = (queue_depth + expected) / max(1, cfg.grow_depth_per_step)
        if (deadline_slack_s is not None
                and deadline_slack_s < cfg.deadline_slack_s):
            load += 1.0
        return load

    def _efficient_cap(
        self, schedule: Optional[FoldingSchedule], items: int
    ) -> int:
        """Growth cap from the energy-aware shape hint.

        Caller must hold ``self._lock`` (mutates the hint cache).
        """
        if schedule is None or not self.config.energy_aware:
            return self.max_ways
        # Items enter the key as a power-of-two bucket: the efficient
        # shape depends on batch depth (one item never fills a wide
        # tile array), but caching per exact count would let a sweep
        # of batch sizes grow the cache without bound.
        key = (
            schedule.resources.mccs,
            schedule.fold_cycles,
            schedule.bus_words,
            max(items, 1).bit_length(),
        )
        cached = self._hint_cache.get(key)
        if cached is not None:
            return cached
        choices = shape_choices(
            schedule,
            scratchpad_ways=self.scratch_ways,
            total_ways=self.total_ways,
            items=max(items, 1),
            min_compute_ways=self.min_ways,
            max_compute_ways=self.max_ways,
            clocking=self.clocking,
            energy=self.energy,
        )
        if not choices:
            cap = self.max_ways
        else:
            best = max(c.items_per_joule for c in choices)
            cap = min(
                c.compute_ways
                for c in choices
                if c.items_per_joule >= 0.99 * best
            )
        self._hint_cache[key] = cap
        return cap

    # ------------------------------------------------------------------
    # The lease lifecycle
    # ------------------------------------------------------------------

    def lease(
        self,
        placement: Placement,
        *,
        queue_depth: int = 0,
        deadline_slack_s: Optional[float] = None,
        schedule: Optional[FoldingSchedule] = None,
        items: int = 0,
    ) -> ElasticLease:
        """Claim ``placement``'s slices warm, resizing them to the load.

        Idle slices are cold-set-up at the desired shape; warm slices
        are resized in place only when the hysteresis policy says so.
        Every way that changes role is billed flush time plus the way
        switch latency, and the flush/eviction energy, onto the
        returned lease.
        """
        with self._lock:
            now = self._clock()
            load = self._load(queue_depth, deadline_slack_s)
            cap = self._efficient_cap(schedule, items)
            controllers = [
                self.devices[placement.device].controllers[index]
                for index in placement.slices
            ]
            states = [
                self._slices.setdefault(
                    (placement.device, index), _SliceState()
                )
                for index in placement.slices
            ]
            current = next(
                (
                    c.slice.partition.compute_ways
                    for c in controllers
                    if c.state is not ControllerState.IDLE
                    and c.slice.partition is not None
                ),
                None,
            )
            if current is None:
                target_ways = self.config.target_compute_ways(
                    0, max(load, self.config.high_water), cap
                )
                target_ways = max(target_ways, self.min_ways)
            else:
                target_ways = self.config.target_compute_ways(
                    current, load, cap
                )
                if target_ways < current and any(
                    now - state.last_resize < self.config.min_dwell_s
                    for state in states
                ):
                    # Hysteresis dwell: a shrink waits out the window
                    # so grow/shrink can't ping-pong wave to wave.
                    target_ways = current
            target = SlicePartition(
                compute_ways=target_ways,
                scratchpad_ways=self.scratch_ways,
                total_ways=self.total_ways,
            )
            lease = ElasticLease(placement=placement, partition=target)
            for state, controller in zip(states, controllers):
                if controller.state is ControllerState.IDLE:
                    report = controller.setup(target)
                    changed = target.compute_ways + target.scratchpad_ways
                    cost = (
                        report.flush_time_s
                        + changed * self.config.way_switch_s
                    )
                    energy_j = self.energy.reconfiguration_energy(
                        flushed_bytes=report.flushed_bytes, config_words=0
                    )
                    lease.cost_s += cost
                    lease.energy_j += energy_j
                    lease.ways_changed += changed
                    lease.cold_slices += 1
                    lease.resizes += 1
                    self._counters["cold_setups"] += 1
                    self._bill(changed, cost, energy_j)
                    state.last_resize = now
                elif controller.slice.partition != target:
                    report = controller.resize(target)
                    cost = (
                        report.flush_time_s
                        + report.delta.ways_changed
                        * self.config.way_switch_s
                    )
                    energy_j = self.energy.reconfiguration_energy(
                        flushed_bytes=report.delta.flushed_bytes,
                        config_words=0,
                    )
                    lease.cost_s += cost
                    lease.energy_j += energy_j
                    lease.ways_changed += report.delta.ways_changed
                    lease.resizes += 1
                    self._bill(report.delta.ways_changed, cost, energy_j)
                    state.last_resize = now
                else:
                    lease.warm_slices += 1
                    self._counters["warm_attaches"] += 1
                state.active = True
                state.last_used = now
            return lease

    def _bill(self, ways: int, cost_s: float, energy_j: float) -> None:
        """Accumulate transition costs.  Caller must hold ``self._lock``."""
        self._counters["ways_resized"] += ways
        self._counters["resizes"] += 1
        self._counters["resize_cost_s"] += cost_s
        self._counters["resize_energy_j"] += energy_j

    def bill_program(self, cost_s: float, energy_j: float) -> None:
        """Charge a live-reprogram delta to the elastic cost books.

        Way counts and resize counters are untouched — only the time
        and energy of streaming the delta bitstream accrue, so the
        resize stats stay a pure measure of way transitions.
        """
        with self._lock:
            self._counters["resize_cost_s"] += cost_s
            self._counters["resize_energy_j"] += energy_j

    def checkin(self, lease: ElasticLease) -> None:
        """Return a lease's slices to the warm-idle pool."""
        with self._lock:
            now = self._clock()
            for index in lease.placement.slices:
                state = self._slices.get((lease.placement.device, index))
                if state is not None:
                    state.active = False
                    state.last_used = now

    def maybe_reclaim(self, now: Optional[float] = None) -> int:
        """Tear down warm slices idle past the release window.

        Returns the number of ways returned to cache mode.  Never
        touches a slice with an active lease, so a running wave's ways
        cannot be freed under it.
        """
        released = 0
        with self._lock:
            now = self._clock() if now is None else now
            for (device, index), state in self._slices.items():
                if state.active:
                    continue
                controller = self.devices[device].controllers[index]
                if controller.state is ControllerState.IDLE:
                    continue
                if now - state.last_used < self.config.idle_release_s:
                    continue
                partition = controller.slice.partition
                ways = (
                    partition.compute_ways + partition.scratchpad_ways
                    if partition is not None else 0
                )
                controller.teardown()
                cost = ways * self.config.way_switch_s
                self._bill(ways, cost, 0.0)
                self._counters["reclaims"] += 1
                state.last_resize = now
                released += ways
        return released

    def drain(self) -> int:
        """Release every warm slice back to all-cache (shutdown path)."""
        released = 0
        with self._lock:
            for (device, index), state in self._slices.items():
                if state.active:
                    raise ServiceError(
                        f"cannot drain: slice {index} of device {device} "
                        "has an active lease"
                    )
                controller = self.devices[device].controllers[index]
                if controller.state is ControllerState.IDLE:
                    continue
                partition = controller.slice.partition
                ways = (
                    partition.compute_ways + partition.scratchpad_ways
                    if partition is not None else 0
                )
                controller.teardown()
                self._bill(ways, ways * self.config.way_switch_s, 0.0)
                released += ways
            self._slices.clear()
        return released

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def locked_ways(self) -> int:
        """Ways currently locked (compute + scratchpad) fleet-wide."""
        total = 0
        for device in self.devices:
            for controller in device.controllers:
                total += len(controller.slice.cache.locked_ways)
        return total

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)
