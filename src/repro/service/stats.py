"""Service observability: latency percentiles and stats snapshots."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..telemetry.metrics import Reservoir


def percentile(samples: List[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of ``samples`` (``fraction`` in [0, 1])."""
    if not samples:
        return None
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("percentile fraction must be within [0, 1]")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
    return ordered[rank]


class LatencyTracker:
    """Bounded reservoir of job latencies (seconds).

    Backed by a seeded Algorithm-R :class:`~repro.telemetry.Reservoir`,
    so the retained sample — and therefore p50/p95 — is a deterministic
    function of the latency sequence: replaying the same run yields the
    same percentiles, and memory never exceeds ``max_samples`` floats.
    :attr:`sample_count` says how many samples the percentiles actually
    rest on, so a p95 over three jobs is visibly a p95 over three jobs.
    """

    def __init__(self, max_samples: int = 4096, seed: int = 0) -> None:
        self.max_samples = max_samples
        self._reservoir = Reservoir(capacity=max_samples, seed=seed)

    def add(self, seconds: float) -> None:
        self._reservoir.add(seconds)

    @property
    def count(self) -> int:
        """Latencies ever observed (>= :attr:`sample_count`)."""
        return self._reservoir.count

    @property
    def sample_count(self) -> int:
        """Samples retained — the denominator behind p50/p95."""
        return self._reservoir.sample_count

    def percentile(self, fraction: float) -> Optional[float]:
        return self._reservoir.percentile(fraction)

    @property
    def p50(self) -> Optional[float]:
        return self._reservoir.percentile(0.50)

    @property
    def p95(self) -> Optional[float]:
        return self._reservoir.percentile(0.95)


@dataclass
class ServiceStats:
    """One point-in-time snapshot of an :class:`AcceleratorService`.

    Like :class:`~repro.service.jobs.JobResult` this is wire-format
    data: plain ints/floats/lists/dicts only, so a snapshot pickles
    across the sharded gateway's process boundary and round-trips
    losslessly through :meth:`to_dict`/:meth:`from_dict`.
    """

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    cancelled: int = 0
    timed_out: int = 0
    saturated: int = 0             # rejected by bounded-queue backpressure
    requeued: int = 0              # returned to the queue by deadline aborts
    retries: int = 0
    batches: int = 0               # merged runs executed
    batched_jobs: int = 0          # jobs that shared a run with another
    queue_depth: int = 0
    running: int = 0
    workers: int = 0               # dispatch threads (0 = synchronous)
    workers_busy: int = 0          # of which currently executing a wave
    slice_utilization: List[float] = field(default_factory=list)
    cache: Dict[str, float] = field(default_factory=dict)
    latency_p50_s: Optional[float] = None
    latency_p95_s: Optional[float] = None
    latency_samples: int = 0       # samples behind the percentiles
    # Elastic partitioning (zero when the service runs static):
    ways_resized: int = 0          # way grow/shrink/setup transitions
    resize_cost_s: float = 0.0     # modeled flush+switch+delta-config time
    warm_attaches: int = 0         # waves that reused locked ways
    warm_waves: int = 0            # of which also reused the program
    locked_ways: int = 0           # gauge: ways held out of cache now
    energy_j: float = 0.0          # modeled accelerator + transition energy
    items_per_joule: float = 0.0   # executed items per modeled joule

    @property
    def cache_hit_rate(self) -> float:
        return float(self.cache.get("hit_rate", 0.0))

    def to_dict(self) -> Dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "timed_out": self.timed_out,
            "saturated": self.saturated,
            "requeued": self.requeued,
            "retries": self.retries,
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "queue_depth": self.queue_depth,
            "running": self.running,
            "workers": self.workers,
            "workers_busy": self.workers_busy,
            "slice_utilization": list(self.slice_utilization),
            "cache": dict(self.cache),
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "latency_samples": self.latency_samples,
            "ways_resized": self.ways_resized,
            "resize_cost_s": self.resize_cost_s,
            "warm_attaches": self.warm_attaches,
            "warm_waves": self.warm_waves,
            "locked_ways": self.locked_ways,
            "energy_j": self.energy_j,
            "items_per_joule": self.items_per_joule,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ServiceStats":
        """Inverse of :meth:`to_dict` (the wire-format contract)."""
        fields_ = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields_})
