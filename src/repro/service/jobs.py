"""Job model and priority queue for the serving layer.

A :class:`Job` is one caller request moving through admission,
queueing, placement, execution, and completion.  The queue orders by
descending priority (ties FIFO) and supports pulling a whole *batch
group* — every queued job that can share one programmed accelerator —
so same-benchmark traffic amortises configuration writes the way the
paper's host interface intends (one program step, many invocations).
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis import AnalysisReport
from ..freac.engine import EngineLike, resolve_engine
from ..workloads.datagen import Dataset


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    REJECTED = "rejected"      # admission control said no (lint errors)
    FAILED = "failed"          # ran, but errored (e.g. retries exhausted)
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"
    SATURATED = "saturated"    # bounded queue was full (backpressure)

    @property
    def terminal(self) -> bool:
        return self not in (JobState.PENDING, JobState.RUNNING)


@dataclass(frozen=True)
class JobRequest:
    """What a caller asks for: benchmark, batch, and service knobs."""

    benchmark: str
    items: int
    priority: int = 0
    mccs_per_tile: int = 1
    lut_inputs: int = 5
    slices: int = 1                    # device slices this job wants
    timeout_s: Optional[float] = None  # queue-wait deadline
    seed: int = 0
    dataset: Optional[Dataset] = None
    #: Any EngineLike (spec, name, or None); normalized to the spec's
    #: name so requests stay picklable (docs/execution.md).
    engine: EngineLike = None
    optimize: bool = False             # fold-count-minimized program
    opt_budget_s: Optional[float] = None  # optimizer time box override

    def __post_init__(self) -> None:
        object.__setattr__(self, "engine", resolve_engine(self.engine).name)

    def batch_key(self) -> Tuple:
        """Jobs with equal keys can share one programmed accelerator.

        The engine is part of the key: a wave runs under exactly one
        engine, so jobs pinned to different engines never merge.  The
        optimizer knobs are too — different budgets compile to
        different cache entries, and a wave is programmed from exactly
        one of them.
        """
        return (self.benchmark, self.lut_inputs, self.mccs_per_tile,
                self.slices, self.engine, self.optimize, self.opt_budget_s)


@dataclass
class JobResult:
    """The terminal outcome handed back by ``result()``.

    This is the serving layer's *wire format*: every field is a plain
    int/str/float/bool (or a nesting of those) — no device, session,
    or lock references — so a result round-trips losslessly through
    both :mod:`pickle` (the sharded gateway's reply channel) and
    :meth:`to_dict`/:meth:`from_dict` (JSON sidecars, stats files).
    """

    job_id: int
    state: JobState
    benchmark: str
    items: int
    verified: Optional[bool] = None
    mismatches: int = 0
    invocations: int = 0
    latency_s: Optional[float] = None     # submit -> terminal
    queue_s: Optional[float] = None       # submit -> placement
    retries: int = 0
    batch_size: int = 1                   # jobs merged into this run
    cache_hit: Optional[bool] = None
    placement: Optional[Tuple[int, Tuple[int, ...]]] = None
    admission: Optional[AnalysisReport] = None   # full report on rejection
    error: Optional[str] = None

    def to_dict(self) -> Dict:
        data: Dict = {
            "job_id": self.job_id,
            "state": self.state.value,
            "benchmark": self.benchmark,
            "items": self.items,
            "verified": self.verified,
            "mismatches": self.mismatches,
            "invocations": self.invocations,
            "latency_s": self.latency_s,
            "queue_s": self.queue_s,
            "retries": self.retries,
            "batch_size": self.batch_size,
            "cache_hit": self.cache_hit,
            "placement": (
                [self.placement[0], list(self.placement[1])]
                if self.placement else None
            ),
            "error": self.error,
        }
        if self.admission is not None:
            data["admission"] = self.admission.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "JobResult":
        """Inverse of :meth:`to_dict` (the wire-format contract)."""
        placement = data.get("placement")
        admission = data.get("admission")
        return cls(
            job_id=data["job_id"],
            state=JobState(data["state"]),
            benchmark=data["benchmark"],
            items=data["items"],
            verified=data.get("verified"),
            mismatches=data.get("mismatches", 0),
            invocations=data.get("invocations", 0),
            latency_s=data.get("latency_s"),
            queue_s=data.get("queue_s"),
            retries=data.get("retries", 0),
            batch_size=data.get("batch_size", 1),
            cache_hit=data.get("cache_hit"),
            placement=(
                (placement[0], tuple(placement[1]))
                if placement is not None else None
            ),
            admission=(
                AnalysisReport.from_dict(admission)
                if admission is not None else None
            ),
            error=data.get("error"),
        )


@dataclass
class Job:
    """One request's lifecycle record inside the service."""

    id: int
    request: JobRequest
    state: JobState = JobState.PENDING
    submitted_at: float = 0.0           # time.perf_counter timestamps
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cache_hit: bool = False
    result: Optional[JobResult] = None

    @property
    def done(self) -> bool:
        return self.state.terminal


class JobQueue:
    """Priority queue (max priority first, FIFO within a priority).

    Thread-safe: every operation holds one internal lock, so many
    submitter threads and many worker threads can push/pop
    concurrently.  ``max_depth`` bounds the queue: :meth:`offer`
    refuses (returns ``False``) once that many jobs are pending, which
    the service turns into a ``SATURATED`` rejection — backpressure
    instead of unbounded memory growth under overload.  Requeues
    (placement failures, mid-wave deadline aborts) bypass the bound:
    a job already admitted must never be dropped.
    """

    #: Mutated only under ``self._lock`` — enforced by
    #: ``repro.analysis.selfcheck`` in CI.
    _GUARDED_BY_LOCK = ("_heap",)

    def __init__(self, max_depth: Optional[int] = None) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("queue depth bound must be at least one job")
        self.max_depth = max_depth
        self._heap: List[Tuple[int, int, Job]] = []
        self._sequence = itertools.count()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            self._compact()
            return len(self._heap)

    def push(self, job: Job) -> None:
        """Unbounded push (requeues and tests); see :meth:`offer`."""
        with self._lock:
            heapq.heappush(
                self._heap, (-job.request.priority, next(self._sequence), job)
            )

    def offer(self, job: Job) -> bool:
        """Bounded push: ``False`` when the queue is saturated."""
        with self._lock:
            self._compact()
            if self.max_depth is not None and len(self._heap) >= self.max_depth:
                return False
            self.push(job)
            return True

    def _compact(self) -> None:
        # Cancelled/timed-out jobs are abandoned in place; drop them
        # lazily so depth and pop never see them.
        while self._heap and self._heap[0][2].state is not JobState.PENDING:
            heapq.heappop(self._heap)

    def pop(self) -> Optional[Job]:
        with self._lock:
            self._compact()
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def pop_group(self, *, batch: bool = True,
                  max_items: Optional[int] = None) -> List[Job]:
        """Pop the head job plus every queued job batchable with it.

        Group members share a :meth:`JobRequest.batch_key`; the head's
        priority wins (a batched low-priority job rides along — strict
        priority order is preserved for the *head* of every group).
        ``max_items`` caps the merged batch size.
        """
        with self._lock:
            head = self.pop()
            if head is None:
                return []
            group = [head]
            if not batch:
                return group
            budget = (
                None if max_items is None else max_items - head.request.items
            )
            key = head.request.batch_key()
            kept: List[Tuple[int, int, Job]] = []
            self._compact()
            for entry in sorted(self._heap):
                job = entry[2]
                if job.state is not JobState.PENDING:
                    continue
                fits = budget is None or job.request.items <= budget
                if job.request.batch_key() == key and fits:
                    group.append(job)
                    if budget is not None:
                        budget -= job.request.items
                else:
                    kept.append(entry)
            self._heap = kept
            heapq.heapify(self._heap)
            return group

    def requeue(self, jobs: List[Job]) -> None:
        """Return unplaced jobs to the queue (priority order holds;
        within a priority they line up behind current arrivals)."""
        with self._lock:
            for job in jobs:
                heapq.heappush(
                    self._heap,
                    (-job.request.priority, next(self._sequence), job),
                )
