"""Slice-aware placement: pack jobs onto disjoint slices of a device.

LLC slices are independent (paper Sec. III-E) — each can hold its own
partition and accelerator — so the scheduling unit is a *slice*, not a
device.  The pool tracks which slices of which device are busy and
hands out disjoint sets, preferring to fill an already-busy device
(best-fit) so idle devices stay fully free for wide jobs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..errors import ServiceError


@dataclass(frozen=True)
class Placement:
    """A claim on ``slices`` of device ``device``."""

    device: int
    slices: Tuple[int, ...]


class SlicePool:
    """Free/busy bookkeeping over every slice of every device.

    Thread-safe: acquire/release are atomic under one internal lock,
    so concurrent workers can never claim overlapping slices.
    """

    #: Mutated only under ``self._lock`` — enforced by
    #: ``repro.analysis.selfcheck`` in CI.
    _GUARDED_BY_LOCK = ("_busy",)

    def __init__(self, slice_counts: Sequence[int]) -> None:
        if not slice_counts:
            raise ServiceError("a slice pool needs at least one device")
        for device, count in enumerate(slice_counts):
            if count < 1:
                raise ServiceError(
                    f"device {device} has {count} slices; every device "
                    "needs at least one slice to serve"
                )
        self._counts = list(slice_counts)
        self._busy: List[Set[int]] = [set() for _ in slice_counts]
        self._lock = threading.RLock()

    @property
    def devices(self) -> int:
        return len(self._counts)

    @property
    def max_slices(self) -> int:
        return max(self._counts)

    def free_slices(self, device: int) -> List[int]:
        with self._lock:
            return [
                index for index in range(self._counts[device])
                if index not in self._busy[device]
            ]

    def acquire(self, slices_needed: int) -> Optional[Placement]:
        """Claim ``slices_needed`` disjoint slices, or None if full.

        Best-fit across devices: the device with the fewest free
        slices that still fit wins, so small jobs pack together and
        leave whole devices free for slice-hungry ones.
        """
        if slices_needed < 1:
            raise ServiceError("a placement needs at least one slice")
        with self._lock:
            best: Optional[int] = None
            best_free: Optional[List[int]] = None
            for device in range(self.devices):
                free = self.free_slices(device)
                if len(free) >= slices_needed and (
                    best_free is None or len(free) < len(best_free)
                ):
                    best, best_free = device, free
            if best is None or best_free is None:
                return None
            claimed = tuple(best_free[:slices_needed])
            self._busy[best].update(claimed)
            return Placement(device=best, slices=claimed)

    def release(self, placement: Placement) -> None:
        with self._lock:
            busy = self._busy[placement.device]
            for index in placement.slices:
                if index not in busy:
                    raise ServiceError(
                        f"slice {index} of device {placement.device} "
                        "was not held"
                    )
            for index in placement.slices:
                busy.remove(index)

    def utilization(self) -> List[float]:
        """Busy fraction per device."""
        with self._lock:
            return [
                len(self._busy[device]) / self._counts[device]
                for device in range(self.devices)
            ]

    def busy_total(self) -> int:
        with self._lock:
            return sum(len(busy) for busy in self._busy)
