"""Multi-tenant accelerator serving layer (docs/serving.md).

The paper exposes FReaC Cache through memory-mapped control registers
precisely so many host threads can share the fabric (Sec. III-E); this
package is the runtime between those callers and
:class:`~repro.freac.device.FreacDevice`:

* :mod:`~repro.service.programs` — a content-addressed compiled-program
  cache (in-memory LRU + optional on-disk JSON store) so admission
  never repeats synthesis/tech-map/fold for a benchmark already seen;
* :mod:`~repro.service.jobs` — the job model and priority queue;
* :mod:`~repro.service.placement` — slice-aware placement packing
  independent jobs onto disjoint slices of one device;
* :mod:`~repro.service.stats` — latency tracking and the
  :class:`ServiceStats` snapshot;
* :mod:`~repro.service.service` — :class:`AcceleratorService`, the
  device pool + scheduler with admission control, batching, deadlines,
  backpressure, and bounded retry with backoff;
* :mod:`~repro.service.workers` — :class:`WorkerPool`, N dispatch
  threads running waves on disjoint slice groups concurrently;
* :mod:`~repro.service.frontend` — the ``freac serve`` / ``freac
  submit`` command-line front ends.
"""

from .jobs import Job, JobQueue, JobRequest, JobResult, JobState
from .placement import Placement, SlicePool
from .programs import (
    CompiledProgram,
    ProgramCache,
    ProgramKey,
    compile_program,
    program_key,
)
from .service import AcceleratorService
from .stats import LatencyTracker, ServiceStats
from .workers import WorkerPool

__all__ = [
    "AcceleratorService",
    "CompiledProgram",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobResult",
    "JobState",
    "LatencyTracker",
    "Placement",
    "ProgramCache",
    "ProgramKey",
    "ServiceStats",
    "SlicePool",
    "WorkerPool",
    "compile_program",
    "program_key",
]
