"""``freac serve`` / ``freac submit``: file- or stdin-fed front ends.

``freac submit BENCH --items N`` is the one-shot path: spin up a
service, admit one job, pump to completion, print the result.

``freac serve --requests FILE`` reads a request stream (one request
per line, ``-`` or no flag = stdin), submits everything up front so
priorities/batching/placement actually interact, pumps until the queue
drains, and prints per-job lines plus a stats summary.

Request line grammar (``#`` starts a comment)::

    BENCH ITEMS [key=value ...]
    # keys: priority, tile, lut, slices, seed, timeout, engine,
    #       optimize, opt_budget
    GEMM 8 priority=2 slices=2
    AES 4 timeout=30
    DOT 16 engine=reference
    SORT 8 optimize=1 opt_budget=4
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError, RequestError
from ..freac.compute_slice import SlicePartition
from ..freac.engine import DEFAULT_ENGINE, ENGINES, validate_engine
from ..params import scaled_system
from ..request import RunRequest
from .jobs import Job, JobState
from .service import AcceleratorService

def _parse_bool(value: str) -> bool:
    lowered = value.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"not a boolean: {value!r}")


_KEYS = {
    "priority": ("priority", int),
    "tile": ("mccs_per_tile", int),
    "lut": ("lut_inputs", int),
    "slices": ("slices", int),
    "seed": ("seed", int),
    "timeout": ("timeout_s", float),
    "engine": ("engine", validate_engine),
    "optimize": ("optimize", _parse_bool),
    "opt_budget": ("opt_budget_s", float),
}


def parse_request(line: str) -> Optional[Tuple[str, int, Dict]]:
    """One request line -> (benchmark, items, submit kwargs) or None."""
    text = line.split("#", 1)[0].strip()
    if not text:
        return None
    fields = text.split()
    if len(fields) < 2:
        raise RequestError(
            f"bad request line {line.strip()!r}: want 'BENCH ITEMS [k=v ...]'"
        )
    benchmark = fields[0]
    try:
        items = int(fields[1])
    except ValueError:
        raise RequestError(
            f"bad item count {fields[1]!r} in {line.strip()!r}"
        ) from None
    kwargs: Dict = {}
    for token in fields[2:]:
        key, _, value = token.partition("=")
        if key not in _KEYS or not value:
            raise RequestError(
                f"bad option {token!r}; known keys: {', '.join(sorted(_KEYS))}"
            )
        name, cast = _KEYS[key]
        try:
            kwargs[name] = cast(value)
        except (ValueError, ReproError):
            raise RequestError(f"bad value in {token!r}") from None
    return benchmark, items, kwargs


def read_requests(stream: IO[str]) -> Iterable[Tuple[str, int, Dict]]:
    for line in stream:
        parsed = parse_request(line)
        if parsed is not None:
            yield parsed


def build_service(args: argparse.Namespace) -> AcceleratorService:
    return AcceleratorService(
        devices=args.devices,
        system=scaled_system(l3_slices=args.device_slices),
        partition=SlicePartition(
            compute_ways=args.compute_ways,
            scratchpad_ways=args.scratchpad_ways,
        ),
        cache_dir=args.cache_dir,
        batching=not getattr(args, "no_batching", False),
        max_retries=args.max_retries,
        workers=getattr(args, "workers", 0),
        max_queue_depth=getattr(args, "max_queue_depth", None),
        elastic=getattr(args, "elastic", False),
    )


def _print_job(job: Job) -> None:
    result = job.result
    assert result is not None
    line = (
        f"job {result.job_id:>3} {result.benchmark:<5} "
        f"x{result.items:<5} {result.state.value:<9}"
    )
    if result.state is JobState.DONE:
        line += (
            f" verified={'yes' if result.verified else 'NO'}"
            f" latency={result.latency_s * 1e3:.2f}ms"
            f" cache={'hit' if result.cache_hit else 'miss'}"
        )
        if job.request.optimize:
            line += " optimized"
        if result.placement:
            device, slices = result.placement
            line += f" device={device} slices={list(slices)}"
        if result.batch_size > 1:
            line += f" batched_with={result.batch_size - 1}"
        if result.retries:
            line += f" retries={result.retries}"
    elif result.state is JobState.REJECTED and result.admission is not None:
        line += f" ({len(result.admission.errors)} lint error(s))"
        for diagnostic in result.admission.errors:
            line += f"\n      {diagnostic.rule}: {diagnostic.message}"
    elif result.error:
        line += f" ({result.error})"
    print(line)


def cmd_submit(args: argparse.Namespace) -> int:
    """One-shot: submit a single request and wait for its result."""
    service = build_service(args)
    try:
        job = service.submit_request(RunRequest.from_args(args))
        service.result(job)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        service.close()
    _print_job(job)
    assert job.result is not None
    return 0 if (job.state is JobState.DONE and job.result.verified) else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Batch mode: admit a whole request stream, then drain it."""
    if args.requests in (None, "-"):
        stream = sys.stdin
        close = False
    else:
        try:
            stream = open(args.requests)
        except OSError as exc:
            print(f"cannot read {args.requests}: {exc}", file=sys.stderr)
            return 2
        close = True

    service = build_service(args)
    jobs: List[Job] = []
    exit_code = 0
    try:
        for index, (benchmark, items, kwargs) in enumerate(
            read_requests(stream), start=1
        ):
            try:
                jobs.append(service.submit(benchmark, items, **kwargs))
            except RequestError as exc:
                print(f"request {index} refused: {exc}", file=sys.stderr)
                exit_code = 1
        if service.worker_count:
            service.drain()
        else:
            while any(not job.done for job in jobs):
                service.pump()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if close:
            stream.close()
        service.close()

    for job in jobs:
        _print_job(job)
        if job.state is not JobState.DONE or not job.result.verified:
            exit_code = max(exit_code, 1)

    stats = service.stats()
    print(
        f"-- {stats.completed} done, {stats.rejected} rejected, "
        f"{stats.failed} failed, {stats.timed_out} timed out | "
        f"cache hit rate {stats.cache_hit_rate:.0%} | "
        f"p50 {_ms(stats.latency_p50_s)} p95 {_ms(stats.latency_p95_s)} "
        f"(n={stats.latency_samples})"
    )
    if stats.ways_resized:
        print(
            f"-- elastic: {stats.ways_resized} way transitions "
            f"({stats.resize_cost_s * 1e6:.2f}us), "
            f"{stats.warm_attaches} warm attaches, "
            f"{stats.items_per_joule:.3g} items/J"
        )
    if args.stats_json:
        with open(args.stats_json, "w") as handle:
            json.dump(stats.to_dict(), handle, indent=2)
        print(f"stats written to {args.stats_json}")
    return exit_code


def _ms(seconds: Optional[float]) -> str:
    return "n/a" if seconds is None else f"{seconds * 1e3:.2f}ms"


def add_parsers(sub: "argparse._SubParsersAction") -> None:
    """Register ``serve`` and ``submit`` on the ``freac`` CLI."""

    def common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--devices", type=int, default=1,
                            help="FReaC devices in the pool")
        parser.add_argument("--device-slices", type=int, default=2,
                            help="LLC slices per device")
        parser.add_argument("--compute-ways", type=int, default=4)
        parser.add_argument("--scratchpad-ways", type=int, default=4)
        parser.add_argument("--cache-dir", default=None,
                            help="persist compiled programs here")
        parser.add_argument("--max-retries", type=int, default=2,
                            help="capacity-retry budget per batch")
        parser.add_argument("--workers", type=int, default=0,
                            help="dispatch threads (0 = synchronous)")
        parser.add_argument("--max-queue-depth", type=int, default=None,
                            help="bound the job queue; a full queue "
                                 "rejects new jobs as SATURATED")
        parser.add_argument("--elastic", action="store_true",
                            help="elastic way partitioning: grow/shrink "
                                 "the compute/cache split per slice with "
                                 "load and keep warm slices locked "
                                 "between waves (docs/elastic.md)")

    submit = sub.add_parser(
        "submit", help="submit one job to a fresh serving instance"
    )
    submit.add_argument("benchmark")
    submit.add_argument("--items", type=int, default=8)
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--tile", type=int, default=1,
                        help="MCCs per accelerator tile")
    submit.add_argument("--job-slices", type=int, default=1,
                        help="device slices this job runs across")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--lut-inputs", type=int, default=5,
                        help="LUT width the program is mapped to")
    submit.add_argument("--engine", choices=ENGINES, default=None,
                        help="execution engine from the EngineSpec "
                        f"registry (default: {DEFAULT_ENGINE})")
    submit.add_argument("--optimize", action="store_true",
                        help="serve the fold-count-minimized program "
                        "(compiled once, then cached)")
    submit.add_argument("--opt-budget-s", type=float, default=None,
                        dest="opt_budget_s",
                        help="optimizer time box override, seconds")
    common(submit)

    serve = sub.add_parser(
        "serve", help="serve a request stream from a file or stdin"
    )
    serve.add_argument("--requests", default="-",
                       help="request file, '-' for stdin (default)")
    serve.add_argument("--no-batching", action="store_true",
                       help="disable same-benchmark batch merging")
    serve.add_argument("--stats-json", default=None,
                       help="write the final ServiceStats snapshot here")
    common(serve)
