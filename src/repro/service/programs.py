"""The compiled-program cache: content-addressed, LRU, optional disk.

Synthesis + technology mapping + folding is by far the most expensive
step of serving a request (seconds for AES against microseconds of
run control), and it is pure: the result depends only on the benchmark
name, the LUT width, the tile size, and the PE library itself.  So the
serving layer caches it content-addressed — the key includes a hash of
the PE library source, making stale entries unreachable after any
library edit rather than silently wrong.

Entries carry the mapped netlist, the folding schedule for the keyed
tile size, and all three static-analysis reports (netlist, schedule,
dataflow), so admission control can re-check a cached program without
re-linting and a rejection can hand the caller the full
:class:`~repro.analysis.AnalysisReport`.

Each entry also carries an **analysis certificate** — a content digest
of the schedule bound to a fingerprint of the rule pack that produced
the verdict.  On a warm hit the cache *verifies* the certificate (one
hash, microseconds) instead of either re-running the ~40-rule lint
pass or trusting stored reports blindly; a stale certificate (rule
pack changed, artifact bytes differ) triggers a transparent re-lint
and re-issue.  ``cert_hits`` / ``cert_misses`` count the outcomes and
``bench_service`` measures the admission-latency delta.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, NamedTuple, Optional, Tuple, Union

from ..analysis import (
    AnalysisReport,
    analyze_dataflow,
    analyze_netlist,
    analyze_schedule,
)
from ..analysis.certs import (
    AnalysisCertificate,
    artifact_digest,
    issue_certificate,
    verify_certificate,
)
from ..circuits.library import library_version, mapped_pe, pe_names
from ..circuits.netlist import Netlist
from ..folding.io import schedule_from_dict, schedule_to_dict
from ..folding.schedule import FoldingSchedule, TileResources
from ..folding.scheduler import list_schedule
from ..freac.device import AcceleratorProgram
from ..freac.specialize import plan_artifact
from ..optimizer import OptimizerConfig, optimize_schedule
from ..telemetry import Telemetry
from ..telemetry.core import resolve

logger = logging.getLogger("repro.service")

# v4: the specialized-engine plan artifact rides along, content-
# addressed by its digest and verified against the schedule at load
# (v3 added the optimizer token + audit stats, v2 the dataflow report
# + analysis certificate).  Old entries fail from_dict, get
# quarantined, and recompile once — acceptable for a cache.
DISK_FORMAT_VERSION = 4


class ProgramKey(NamedTuple):
    """Content address of one compiled program.

    ``optimizer`` is the :meth:`OptimizerConfig.token` that produced
    the entry ("" for the plain heuristic compile), so heuristic and
    optimized programs — or two different optimizer configurations —
    can never collide on one cache slot.
    """

    benchmark: str
    lut_inputs: int
    mccs_per_tile: int
    library_hash: str
    optimizer: str = ""

    @property
    def filename(self) -> str:
        suffix = f"_{self.optimizer}" if self.optimizer else ""
        return (
            f"{self.benchmark.lower()}_k{self.lut_inputs}"
            f"_t{self.mccs_per_tile}_{self.library_hash}{suffix}.json"
        )


def program_key(
    benchmark: str,
    *,
    lut_inputs: int = 5,
    mccs_per_tile: int = 1,
    optimizer: str = "",
) -> ProgramKey:
    return ProgramKey(
        benchmark.upper(), lut_inputs, mccs_per_tile, library_version(),
        optimizer,
    )


@dataclass
class CompiledProgram:
    """Everything admission and execution need, ready to inject."""

    benchmark: str
    lut_inputs: int
    mccs_per_tile: int
    netlist: Netlist                    # technology-mapped
    schedule: FoldingSchedule
    netlist_report: AnalysisReport
    schedule_report: AnalysisReport
    library_hash: str
    dataflow_report: AnalysisReport = field(
        default_factory=lambda: AnalysisReport(artifact="dataflow:?")
    )
    certificate: Optional[AnalysisCertificate] = None
    #: Optimizer token that produced this entry ("" = plain heuristic).
    optimizer: str = ""
    #: Audit record from the optimization pass (fold counts, bound gap,
    #: timings, rejection reasons) — None for heuristic compiles.
    opt_stats: Optional[Dict] = None
    #: The specialized-engine plan artifact
    #: (:func:`repro.freac.specialize.plan_artifact`): the plan's
    #: content digest + shape for supported netlists, or
    #: ``{"supported": False, "reason": ...}``.  Computed lazily on
    #: first serialisation, verified against a deterministic rebuild on
    #: every disk load.
    specialized: Optional[Dict] = None
    #: Runtime-only: this process verified the certificate (or issued
    #: it fresh), so repeat warm hits skip even the digest hash.
    cert_verified: bool = field(default=False, compare=False)

    @property
    def key(self) -> ProgramKey:
        return ProgramKey(
            self.benchmark, self.lut_inputs, self.mccs_per_tile,
            self.library_hash, self.optimizer,
        )

    @property
    def ok(self) -> bool:
        """True when no lint report has error-severity findings."""
        return (self.netlist_report.ok and self.schedule_report.ok
                and self.dataflow_report.ok)

    @property
    def reports(self) -> Tuple[AnalysisReport, ...]:
        return (
            self.netlist_report, self.schedule_report, self.dataflow_report
        )

    def admission_report(self) -> AnalysisReport:
        """All lint reports merged, for structured rejections."""
        merged = AnalysisReport(artifact=f"program:{self.benchmark}")
        rules: list = []
        for report in self.reports:
            merged.extend(report.diagnostics)
            rules.extend(report.rules_run)
        merged.rules_run = list(dict.fromkeys(rules))
        return merged

    def relint(self, *, digest: str = "") -> None:
        """Re-run the full lint pass and issue a fresh certificate.

        The slow path behind a failed certificate verification: the
        artifact (or the rule pack) changed since the stored verdict,
        so nothing short of a full re-analysis is trustworthy.
        """
        self.netlist_report = analyze_netlist(
            self.netlist, lut_inputs=self.lut_inputs
        )
        self.schedule_report = analyze_schedule(self.schedule)
        self.dataflow_report = analyze_dataflow(self.schedule)
        self.certificate = issue_certificate(
            self.schedule, self.reports, digest=digest
        )
        self.cert_verified = True

    def to_accelerator(self) -> AcceleratorProgram:
        """An injectable :class:`AcceleratorProgram` (schedule pre-set)."""
        program = AcceleratorProgram(
            self.benchmark, self.netlist, self.lut_inputs
        )
        program.schedules[self.mccs_per_tile] = self.schedule
        return program

    # -- (de)serialisation — the on-disk cache layer --------------------

    def to_dict(self) -> Dict:
        if self.specialized is None:
            # Building the plan also caches it on the schedule object,
            # so the serving layer's first specialized run is free.
            self.specialized = plan_artifact(self.schedule)
        data = {
            "version": DISK_FORMAT_VERSION,
            "benchmark": self.benchmark,
            "lut_inputs": self.lut_inputs,
            "mccs_per_tile": self.mccs_per_tile,
            "library_hash": self.library_hash,
            # The schedule dict embeds the mapped netlist.
            "schedule": schedule_to_dict(self.schedule),
            "netlist_report": self.netlist_report.to_dict(),
            "schedule_report": self.schedule_report.to_dict(),
            "dataflow_report": self.dataflow_report.to_dict(),
            "optimizer": self.optimizer,
            "specialized": self.specialized,
        }
        if self.opt_stats is not None:
            data["opt_stats"] = self.opt_stats
        if self.certificate is not None:
            data["certificate"] = self.certificate.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CompiledProgram":
        if data.get("version") != DISK_FORMAT_VERSION:
            raise ValueError(
                f"unsupported cache entry version {data.get('version')!r}"
            )
        schedule = schedule_from_dict(data["schedule"])
        # The specialized plan is a pure function of the schedule, so
        # the artifact is *verified*, not trusted: rebuild it and
        # compare content digests.  A mismatch means the entry is torn
        # or stale; the caller quarantines it (one recompile, no crash).
        stored = data.get("specialized")
        if stored is None:
            raise ValueError("cache entry lacks a specialized plan artifact")
        rebuilt = plan_artifact(schedule)
        if rebuilt != stored:
            raise ValueError(
                "specialized plan artifact does not match its schedule: "
                f"stored {stored.get('digest')!r}, "
                f"rebuilt {rebuilt.get('digest')!r}"
            )
        certificate = data.get("certificate")
        return cls(
            benchmark=data["benchmark"],
            lut_inputs=data["lut_inputs"],
            mccs_per_tile=data["mccs_per_tile"],
            netlist=schedule.netlist,
            schedule=schedule,
            netlist_report=AnalysisReport.from_dict(data["netlist_report"]),
            schedule_report=AnalysisReport.from_dict(data["schedule_report"]),
            library_hash=data["library_hash"],
            dataflow_report=AnalysisReport.from_dict(data["dataflow_report"]),
            certificate=(
                None if certificate is None
                else AnalysisCertificate.from_dict(certificate)
            ),
            optimizer=data.get("optimizer", ""),
            opt_stats=data.get("opt_stats"),
            specialized=stored,
        )


def compile_program(
    benchmark: str,
    *,
    lut_inputs: int = 5,
    mccs_per_tile: int = 1,
    optimizer: Optional[OptimizerConfig] = None,
) -> CompiledProgram:
    """Run the full synthesis/tech-map/fold pipeline plus lint.

    Unlike :func:`repro.freac.runner.build_program` this never raises
    on findings: the reports ride along so the serving layer can turn
    them into a structured admission rejection.

    With an enabled ``optimizer`` config, the heuristic schedule seeds
    :func:`repro.optimizer.optimize_schedule` and the (never-worse)
    result is what gets linted, certified, and cached — the expensive
    search runs once per content address, then every warm hit serves
    the shorter fold loop for free.
    """
    name = benchmark.upper()
    netlist = mapped_pe(name, lut_inputs)
    resources = TileResources(mccs=mccs_per_tile, lut_inputs=lut_inputs)
    schedule = list_schedule(netlist, resources)
    token = ""
    opt_stats: Optional[Dict] = None
    if optimizer is not None and optimizer.enabled:
        outcome = optimize_schedule(
            netlist, resources, config=optimizer, heuristic=schedule
        )
        schedule = outcome.schedule
        netlist = schedule.netlist    # the remap may re-cover it
        token = optimizer.token()
        opt_stats = outcome.stats_dict()
    program = CompiledProgram(
        benchmark=name,
        lut_inputs=lut_inputs,
        mccs_per_tile=mccs_per_tile,
        netlist=netlist,
        schedule=schedule,
        netlist_report=analyze_netlist(netlist, lut_inputs=lut_inputs),
        schedule_report=analyze_schedule(schedule),
        library_hash=library_version(),
        dataflow_report=analyze_dataflow(schedule),
        optimizer=token,
        opt_stats=opt_stats,
    )
    program.certificate = issue_certificate(program.schedule, program.reports)
    program.cert_verified = True
    return program


class ProgramCache:
    """In-memory LRU over :class:`CompiledProgram`, write-through disk.

    ``capacity`` bounds the in-memory entries; with a ``directory``,
    entries are also persisted as JSON (one file per key, named by the
    content address) and evicted entries remain loadable from disk.
    Counters: ``hits`` (memory + disk), ``disk_hits`` (subset),
    ``misses`` (compiled from scratch), ``evictions``,
    ``quarantined`` (corrupt disk files set aside), ``cert_hits`` /
    ``cert_misses`` (warm-hit certificate verifications that let the
    cache skip — or forced it to re-run — the full lint pass).

    Thread-safe: one re-entrant lock guards the LRU, the counters, and
    the disk layer, so concurrent submitters share one cache without
    torn state.  Compilation happens under the lock too — a cold key
    is compiled exactly once even when many threads race for it (the
    losers block and then hit), at the cost of serialising concurrent
    *different*-key cold compiles.

    Crash safety: disk writes go to a ``.tmp`` sibling first and are
    published with an atomic ``os.replace``, so a reader (or the next
    process) can never observe a torn entry.  A malformed or
    key-mismatched file found at load time is quarantined — renamed to
    a ``.corrupt`` sibling — and counted, so one bad file degrades to
    a single recompile instead of a crash on every lookup.

    Multi-process use: the in-memory LRU and its lock are per-process,
    so two *processes* pointed at the same directory would race on the
    ``.tmp`` sibling (two writers truncating one temp file can publish
    a torn entry through the atomic rename).  ``namespace`` gives each
    process its own subdirectory under the shared base — the sharded
    gateway passes ``shard<N>`` so shard-local programs stay
    shard-local on disk too — and the temp sibling is additionally
    suffixed with the writer's pid, so even a mis-configured shared
    directory degrades to last-writer-wins on whole entries, never a
    torn file.
    """

    _GUARDED_BY_LOCK = (
        "_entries", "hits", "disk_hits", "misses", "evictions",
        "quarantined", "cert_hits", "cert_misses", "opt_rejected",
    )

    def __init__(
        self,
        capacity: int = 16,
        directory: Union[str, Path, None] = None,
        compiler: Callable[..., CompiledProgram] = compile_program,
        telemetry: Optional[Telemetry] = None,
        namespace: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least one entry")
        if namespace is not None and (
            not namespace or namespace != Path(namespace).name
        ):
            raise ValueError(
                f"cache namespace {namespace!r} must be a bare directory "
                "name (no separators)"
            )
        self.capacity = capacity
        self.namespace = namespace
        base = Path(directory) if directory is not None else None
        if base is not None and namespace is not None:
            base = base / namespace
        self.directory = base
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._compiler = compiler
        self._telemetry = resolve(telemetry)
        self._entries: "OrderedDict[ProgramKey, CompiledProgram]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantined = 0
        self.cert_hits = 0
        self.cert_misses = 0
        self.opt_rejected = 0

    # -- core mapping ---------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ProgramKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def put(self, program: CompiledProgram) -> None:
        key = program.key
        with self._lock:
            self._entries[key] = program
            self._entries.move_to_end(key)
            if self.directory is not None:
                path = self.directory / key.filename
                if not path.exists():
                    self._write_atomic(path, program)
            while len(self._entries) > self.capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                self.evictions += 1
                logger.info("program cache evicted %s", evicted_key)

    def _write_atomic(self, path: Path, program: CompiledProgram) -> None:
        """Publish ``path`` via tmp-sibling + ``os.replace``.

        A crash (or a concurrent writer racing on the same key) can
        leave a stray ``.tmp`` file, never a torn ``.json`` — readers
        only ever see a complete entry or none at all.  The temp
        sibling carries the writer's pid, so two *processes* racing on
        one key never truncate each other's in-progress write.
        """
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(program.to_dict()))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def get(self, key: ProgramKey) -> Optional[CompiledProgram]:
        """Look up without compiling; counts a hit or a miss."""
        with self._lock:
            entry = self._load(key)
            if entry is None:
                self.misses += 1
            return entry

    def get_or_compile(
        self,
        benchmark: str,
        *,
        lut_inputs: int = 5,
        mccs_per_tile: int = 1,
        optimizer: Optional[OptimizerConfig] = None,
    ) -> CompiledProgram:
        """The admission path: cached program, or compile-and-insert.

        Raises ``KeyError`` for a benchmark the PE library does not
        know (before counting a miss — unknown names are a caller
        error, not cache traffic).
        """
        return self.lookup(
            benchmark, lut_inputs=lut_inputs, mccs_per_tile=mccs_per_tile,
            optimizer=optimizer,
        )[0]

    def lookup(
        self,
        benchmark: str,
        *,
        lut_inputs: int = 5,
        mccs_per_tile: int = 1,
        optimizer: Optional[OptimizerConfig] = None,
    ) -> Tuple[CompiledProgram, bool]:
        """:meth:`get_or_compile`, plus whether this call was a hit.

        The serving layer wants hit/miss per submission; deriving it by
        diffing the shared counters is racy once submitters run
        concurrently (another thread's hit inflates the delta).

        ``optimizer`` (an enabled :class:`OptimizerConfig`) routes a
        miss through the optimizing compile; its token lands in the
        key, so heuristic and optimized entries never alias.
        """
        token = optimizer.token() if optimizer is not None else ""
        key = program_key(
            benchmark, lut_inputs=lut_inputs, mccs_per_tile=mccs_per_tile,
            optimizer=token,
        )
        with self._lock:
            if key.benchmark not in pe_names() and key not in self._entries:
                raise KeyError(
                    f"unknown benchmark {benchmark!r}; "
                    f"available: {', '.join(pe_names())}"
                )
            entry = self._load(key)
            if entry is not None:
                return entry, True
            self.misses += 1
            kwargs: Dict = dict(
                lut_inputs=lut_inputs, mccs_per_tile=mccs_per_tile
            )
            if optimizer is not None:
                # Only the optimizing path passes the kwarg, so custom
                # test compilers with the old signature keep working.
                kwargs["optimizer"] = optimizer
            program = self._compiler(key.benchmark, **kwargs)
            if program.opt_stats and program.opt_stats.get("rejected"):
                self.opt_rejected += 1
            self.put(program)
            return program, False

    def clear(self, *, disk: bool = False) -> None:
        """Drop every in-memory entry (and on-disk files if asked)."""
        with self._lock:
            self._entries.clear()
            if disk and self.directory is not None:
                for path in self.directory.glob("*.json"):
                    path.unlink()

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "quarantined": self.quarantined,
                "cert_hits": self.cert_hits,
                "cert_misses": self.cert_misses,
                "opt_rejected": self.opt_rejected,
                "hit_rate": self.hit_rate,
            }

    # -- lookup layers --------------------------------------------------

    def _load(self, key: ProgramKey) -> Optional[CompiledProgram]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self._ensure_verified(entry)
                return entry
            entry = self._load_from_disk(key)
            if entry is not None:
                self.hits += 1
                self.disk_hits += 1
                self._ensure_verified(entry)
                self.put(entry)
                return entry
            return None

    def _ensure_verified(self, entry: CompiledProgram) -> None:
        """Check the entry's analysis certificate once per process.

        The caller must hold ``self._lock``.

        A verified entry (this process issued or already checked its
        certificate) passes for free.  Otherwise one digest comparison
        decides: a valid certificate means the stored reports are
        provably current (``cert_hits``); a stale or missing one means
        the artifact or the rule pack changed, so the entry is
        re-linted, re-certified, and rewritten to disk
        (``cert_misses``).
        """
        if entry.cert_verified:
            return
        digest = artifact_digest(entry.schedule)
        if entry.certificate is not None and verify_certificate(
            entry.certificate, entry.schedule, digest=digest
        ):
            entry.cert_verified = True
            self.cert_hits += 1
            outcome = "hit"
        else:
            entry.relint(digest=digest)
            self.cert_misses += 1
            outcome = "miss"
            if self.directory is not None:
                self._write_atomic(
                    self.directory / entry.key.filename, entry
                )
        if self._telemetry.enabled:
            self._telemetry.counter(
                "service.cert_checks",
                "certificate verifications on warm program-cache hits",
            ).inc(outcome=outcome)

    def _load_from_disk(self, key: ProgramKey) -> Optional[CompiledProgram]:
        """Read and validate one on-disk entry.

        The caller must hold ``self._lock``.
        """
        if self.directory is None:
            return None
        path = self.directory / key.filename
        if not path.exists():
            return None
        try:
            entry = CompiledProgram.from_dict(json.loads(path.read_text()))
        except OSError as exc:
            # Unreadable (permissions, vanished mid-read): a plain miss.
            logger.warning("cannot read cache file %s: %r", path, exc)
            return None
        except (ValueError, KeyError) as exc:
            # Malformed content (torn write from an old version of this
            # code, disk corruption, wrong schema): quarantine it so it
            # costs one recompile, not a warning on every future lookup.
            self._quarantine(path, repr(exc))
            return None
        if entry.key != key:
            self._quarantine(path, "entry does not match its key")
            return None
        return entry

    def _quarantine(self, path: Path, reason: str) -> None:
        """Set a bad cache file aside as ``<name>.corrupt`` (a miss).

        The caller must hold ``self._lock``.
        """
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
            moved = True
        except OSError:
            moved = False
        self.quarantined += 1
        logger.warning(
            "quarantined cache file %s -> %s (%s)%s",
            path, target.name, reason, "" if moved else " [rename failed]",
        )
