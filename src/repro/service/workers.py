"""The worker pool: concurrent wave dispatch for the serving layer.

The paper's LLC slices operate independently under their CC Ctrls
(Sec. III/V), so nothing about the hardware model forces the serving
layer to run one wave at a time.  ``WorkerPool`` gives
:class:`~repro.service.service.AcceleratorService` N dispatch threads:
each worker claims the highest-priority placeable batch group (jobs +
disjoint slices from the :class:`~repro.service.placement.SlicePool`),
drives the whole :class:`~repro.freac.session.ExecutionSession`
lifecycle for it, and loops.  Waves on disjoint slice groups are in
flight simultaneously — exactly how independent slices serve
independent tenants.

Coordination deliberately shares the *service's* lock: claiming a wave
(queue pop + deadline check + placement) is atomic with respect to
``submit``/``cancel``/``stats``, so no job can be double-claimed or
lost between the queue and the pool.  Workers park on a condition
variable and are kicked by submissions, requeues, and releases; a
short poll timeout guards against missed wakeups.

A worker never dies with work in hand: any exception that escapes the
wave runner is turned into ``FAILED`` results for the wave's jobs and
the placement is released, then the worker goes back to claiming.
Shutdown is graceful by default — ``stop(drain=True)`` lets workers
empty the queue first — and always joins the threads, so by the time
``stop`` returns every session has been torn down.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..errors import ServiceError
from .jobs import Job
from .placement import Placement
from .programs import CompiledProgram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..freac.session import ExecutionSession
    from .elastic import ElasticLease
    from .service import AcceleratorService

logger = logging.getLogger("repro.service")


@dataclass
class Wave:
    """One claimed unit of work: a batch group plus its placement.

    ``released`` makes placement release idempotent — whichever of the
    normal path, the error path, or the worker's last-resort handler
    gets there first wins, and the others are no-ops.
    """

    jobs: List[Job]
    placement: Placement
    compiled: CompiledProgram
    session: Optional["ExecutionSession"] = None
    released: bool = field(default=False)
    #: Elastic serving only: the way lease this wave runs under.
    #: Checked back in by ``_close_wave_session`` (always, even on
    #: error paths) so an idle slice's ways can return to the cache.
    lease: Optional["ElasticLease"] = None


class WorkerPool:
    """N threads dispatching waves onto free slice groups."""

    #: Condition re-check cadence; a backstop against missed wakeups,
    #: not the scheduling latency (kicks wake workers immediately).
    _POLL_S = 0.05

    #: Mutated only under ``self._cv`` (the service lock) — enforced
    #: by ``repro.analysis.selfcheck`` in CI.
    _GUARDED_BY_LOCK = ("_stopping", "_draining", "_busy")

    def __init__(self, service: "AcceleratorService", count: int) -> None:
        if count < 1:
            raise ServiceError("a worker pool needs at least one worker")
        self.service = service
        self.count = count
        # One lock for queue + pool + job state: the service's.
        self._cv = threading.Condition(service._lock)
        self._stopping = False
        self._draining = True
        self._busy = 0
        self._threads = [
            threading.Thread(
                target=self._run, args=(index,),
                name=f"freac-worker-{index}", daemon=True,
            )
            for index in range(count)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Signals from the service
    # ------------------------------------------------------------------

    def kick(self) -> None:
        """Wake parked workers (new job, requeue, or freed slices)."""
        with self._cv:
            self._cv.notify_all()

    @property
    def busy(self) -> int:
        """Workers currently executing a wave."""
        return self._busy

    @property
    def alive(self) -> int:
        return sum(1 for thread in self._threads if thread.is_alive())

    def stop(self, *, drain: bool = True,
             timeout_s: Optional[float] = None) -> None:
        """Stop the pool and join every worker.

        ``drain=True`` (the default) lets workers keep claiming waves
        until the queue is empty; ``drain=False`` stops them after the
        wave they are currently executing — either way no wave is ever
        abandoned mid-flight, so every session is torn down before
        this returns.  Raises :class:`ServiceError` if a worker fails
        to stop within ``timeout_s``.
        """
        with self._cv:
            self._stopping = True
            self._draining = drain
            self._cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
            if thread.is_alive():
                raise ServiceError(
                    f"{thread.name} did not stop within {timeout_s}s "
                    "(a wave is stuck; its jobs are still RUNNING)"
                )

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _run(self, index: int) -> None:
        service = self.service
        while True:
            wave = self._claim()
            if wave is None:
                return
            try:
                service._run_wave(wave, worker=index)
            except Exception as exc:  # last resort: never lose the wave
                logger.exception(
                    "worker %d: wave of %d job(s) crashed", index,
                    len(wave.jobs),
                )
                service._abandon_wave(
                    wave, error=f"worker crashed: {type(exc).__name__}: {exc}"
                )
            finally:
                self._wave_done()

    def _claim(self) -> Optional[Wave]:
        """Block until a wave is claimable or the pool is stopping."""
        service = self.service
        with self._cv:
            while True:
                if self._stopping and (
                    not self._draining or len(service.queue) == 0
                ):
                    return None
                wave = service._next_wave()
                if wave is not None:
                    self._busy += 1
                    return wave
                self._cv.wait(timeout=self._POLL_S)
                # Idle poll: give the elastic partitioner a chance to
                # return ways nobody has leased back to the cache.
                # Lock order is service -> elastic (elastic is a leaf).
                service._elastic_tick()

    def _wave_done(self) -> None:
        with self._cv:
            self._busy -= 1
            self._cv.notify_all()
