"""Folding schedulers: resource-constrained mapping of netlists to MCCs.

Two algorithms are provided:

``level_schedule``
    The paper's flow (Sec. IV): topologically level the DAG, then fold
    each level into as many cycles as its widest resource demands.
    Levels never overlap, which is simple but leaves slots idle.

``list_schedule``
    A cone-ordered list scheduler: ops become ready when their
    producers are placed and are packed into the earliest cycle with a
    free slot of their class.  Priority follows a depth-first
    post-order from the primary outputs, which finishes one logic cone
    before starting the next and thereby keeps the live set (and hence
    flip-flop pressure) small.  This is the scheduler the experiments
    use; the level scheduler serves as the ablation baseline.

Both share a register-pressure post-pass: values whose lifetime spans
the peak-pressure region are spilled to the scratchpad, charged as two
bus words (store + reload) and amortised extra folding cycles — see
DESIGN.md for the accuracy trade-off.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

from ..circuits.level import level_graph
from ..circuits.netlist import Netlist, NodeKind
from ..errors import SchedulingError
from .schedule import (
    FoldingSchedule,
    OpSlot,
    ScheduledOp,
    SpillInfo,
    TileResources,
    slot_for_kind,
)

# Bump when scheduling behaviour changes: the experiment harness keys
# its on-disk schedule cache with this, so stale entries are ignored.
SCHEDULER_VERSION = 2

# Width (in FF bits) of each value class held between folding steps.
_VALUE_BITS = {
    NodeKind.LUT: 1,
    NodeKind.MAC: 32,
    NodeKind.BUS_LOAD: 32,
}


# ---------------------------------------------------------------------------
# Op-level dependence structure
# ---------------------------------------------------------------------------

def op_dependences(
    netlist: Netlist,
) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
    """Op-to-op edges, looking *through* wiring nodes.

    Returns (preds, succs) keyed by op nid.  ``preds[v]`` is the set of
    op nodes whose values v consumes, possibly via PACK/BITSLICE
    chains.  Public: the dataflow analysis tier builds its def-use IR
    from the same dependence structure the schedulers use.
    """
    # op_sources[n] = set of op nids whose values flow out of node n.
    op_sources: Dict[int, frozenset] = {}
    preds: Dict[int, Set[int]] = {}
    succs: Dict[int, Set[int]] = {}
    empty = frozenset()
    for nid in netlist.topo_order():
        node = netlist.nodes[nid]
        if node.kind is NodeKind.FLIPFLOP:
            # A flip-flop's output is stored state: no combinational
            # dependence on its (possibly forward) next-state driver.
            op_sources[nid] = empty
            continue
        incoming: Set[int] = set()
        for fanin in node.fanins:
            incoming |= op_sources[fanin]
        if node.is_op:
            preds[nid] = incoming
            succs[nid] = set()
            for p in incoming:
                succs[p].add(nid)
            op_sources[nid] = frozenset((nid,))
        else:
            op_sources[nid] = frozenset(incoming) if incoming else empty
    return preds, succs


def output_ops(netlist: Netlist) -> Set[int]:
    """Op nodes whose values must stay live to the end of the schedule.

    Primary outputs and flip-flop next-state values are both read at
    the end of the invocation.
    """
    op_sources: Dict[int, frozenset] = {}
    empty = frozenset()
    for nid in netlist.topo_order():
        node = netlist.nodes[nid]
        if node.kind is NodeKind.FLIPFLOP:
            op_sources[nid] = empty
            continue
        incoming: Set[int] = set()
        for fanin in node.fanins:
            incoming |= op_sources[fanin]
        if node.is_op:
            op_sources[nid] = frozenset((nid,))
        else:
            op_sources[nid] = frozenset(incoming) if incoming else empty
    result: Set[int] = set()
    for out in netlist.outputs.values():
        result |= op_sources[out]
    for ff in netlist.flipflops():
        if ff.fanins:
            result |= op_sources[ff.fanins[0]]
    return result


# Backwards-compatible aliases (pre-dataflow-tier private names).
_op_dependences = op_dependences
_output_ops = output_ops

# Public aliases for the optimal-mapping tier (repro.optimizer): its
# rebuild step shares the physical slot layout and the spill post-pass
# with the heuristic schedulers, so an optimized schedule is charged
# exactly like a heuristic one.
VALUE_BITS = _VALUE_BITS


def _cone_priority(netlist: Netlist, preds: Dict[int, Set[int]]) -> Dict[int, int]:
    """Depth-first post-order rank from the outputs / stores."""
    roots = sorted(
        set(nid for nid, node in enumerate(netlist.nodes)
            if node.kind is NodeKind.BUS_STORE)
        | output_ops(netlist)
    )
    rank: Dict[int, int] = {}
    counter = 0
    for root in roots:
        if root in rank:
            continue
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            nid, expanded = stack.pop()
            if expanded:
                if nid not in rank:
                    rank[nid] = counter
                    counter += 1
                continue
            if nid in rank:
                continue
            stack.append((nid, True))
            for p in sorted(preds[nid], reverse=True):
                if p not in rank:
                    stack.append((p, False))
    # Ops unreachable from any output (dead bus loads etc.) go last.
    for nid, node in enumerate(netlist.nodes):
        if node.is_op and nid not in rank:
            rank[nid] = counter
            counter += 1
    return rank


# ---------------------------------------------------------------------------
# Slot tracking
# ---------------------------------------------------------------------------

class _SlotGrid:
    """Per-cycle usage counters with an exact first-free hint."""

    def __init__(self, resources: TileResources) -> None:
        self._resources = resources
        self._used: Dict[OpSlot, List[int]] = {slot: [] for slot in OpSlot}
        self._hint: Dict[OpSlot, int] = {slot: 1 for slot in OpSlot}

    def _count(self, slot: OpSlot, cycle: int) -> int:
        column = self._used[slot]
        index = cycle - 1
        return column[index] if index < len(column) else 0

    def place(self, slot: OpSlot, earliest: int) -> Tuple[int, int]:
        """Earliest cycle >= ``earliest`` with a free slot; returns
        (cycle, index-within-cycle)."""
        capacity = self._resources.slots(slot)
        cycle = max(earliest, self._hint[slot])
        while self._count(slot, cycle) >= capacity:
            cycle += 1
        column = self._used[slot]
        while len(column) < cycle:
            column.append(0)
        index = column[cycle - 1]
        column[cycle - 1] += 1
        if column[cycle - 1] >= capacity and cycle == self._hint[slot]:
            hint = self._hint[slot]
            while self._count(slot, hint) >= capacity:
                hint += 1
            self._hint[slot] = hint
        return cycle, index

    @property
    def max_cycle(self) -> int:
        return max((len(column) for column in self._used.values()), default=0)


def _physical(resources: TileResources, slot: OpSlot, index: int) -> Tuple[int, int]:
    """Map a within-cycle slot index to (mcc, unit)."""
    if slot is OpSlot.LUT:
        per_mcc = resources.luts_per_mcc
        return index // per_mcc, index % per_mcc
    return index, 0


#: Public aliases shared with ``repro.optimizer.rebuild``.
physical_slot = _physical


# ---------------------------------------------------------------------------
# Register pressure / spilling
# ---------------------------------------------------------------------------

def _pressure_pass(
    netlist: Netlist,
    resources: TileResources,
    cycle_of: Dict[int, int],
    total_cycles: int,
    preds: Dict[int, Set[int]],
    succs: Dict[int, Set[int]],
) -> Tuple[int, SpillInfo]:
    """Compute peak FF occupancy and spill down to capacity."""
    outputs = output_ops(netlist)
    intervals: List[Tuple[int, int, int, int]] = []  # (def, last_use, bits, nid)
    for nid, cycle in cycle_of.items():
        node = netlist.nodes[nid]
        bits = _VALUE_BITS.get(node.kind)
        if bits is None:
            continue  # BUS_STORE produces no live value
        uses = [cycle_of[s] for s in succs[nid]]
        last_use = max(uses, default=cycle)
        if nid in outputs:
            last_use = max(last_use, total_cycles)
        if last_use > cycle:
            intervals.append((cycle, last_use, bits, nid))

    capacity = resources.ff_bits
    spills = SpillInfo()
    if not intervals:
        return 0, spills

    # Incrementally-maintained occupancy difference array: spilling a
    # value only touches its own interval, so the O(cycles) rescan per
    # spill is the peak search, not a rebuild.
    diff = [0] * (total_cycles + 2)

    def apply(start: int, end: int, bits: int) -> None:
        diff[start + 1] += bits
        if end + 1 <= total_cycles:
            diff[end + 1] -= bits

    for start, end, bits, _ in intervals:
        apply(start, end, bits)

    def peak() -> Tuple[int, int]:
        best, best_cycle, running = 0, 1, 0
        for cycle in range(1, total_cycles + 1):
            running += diff[cycle]
            if running > best:
                best, best_cycle = running, cycle
        return best, best_cycle

    active = list(intervals)
    unspillable: Set[int] = set()
    max_live, peak_cycle = peak()
    while max_live > capacity:
        candidates = [
            iv for iv in active
            if iv[0] < peak_cycle <= iv[1]
            and iv[3] not in unspillable
            and iv[1] - iv[0] >= 3  # need room for store + reload
        ]
        if not candidates:
            break
        # Spill the value idle for the longest, widest first.
        victim = max(candidates, key=lambda iv: (iv[1] - iv[0], iv[2]))
        active.remove(victim)
        start, end, bits, nid = victim
        apply(start, end, -bits)
        # After spilling the value is resident only just after its
        # definition and just before its reload-use.
        for stub in ((start, start + 1, bits, nid), (end - 1, end, bits, nid)):
            active.append(stub)
            apply(stub[0], stub[1], bits)
        unspillable.add(nid)
        words = max(1, bits // 32)
        spills.spilled_values += 1
        spills.spill_words += 2 * words
        spills.spilled_nids.append(nid)
        max_live, peak_cycle = peak()

    per_cycle_bus = max(resources.bus_ops_per_cycle, 1)
    spills.spill_cycles = -(-spills.spill_words // per_cycle_bus)
    return max_live, spills


#: Public alias shared with ``repro.optimizer.rebuild`` — an optimized
#: cycle assignment pays the same spill charges as a heuristic one, so
#: fold-count comparisons are apples to apples.
pressure_pass = _pressure_pass


# ---------------------------------------------------------------------------
# Schedulers
# ---------------------------------------------------------------------------

def list_schedule(netlist: Netlist, resources: TileResources) -> FoldingSchedule:
    """Cone-ordered list scheduling (the production scheduler)."""
    _reject_unmapped(netlist, resources)
    preds, succs = op_dependences(netlist)
    priority = _cone_priority(netlist, preds)
    grid = _SlotGrid(resources)

    remaining = {nid: len(preds[nid]) for nid in preds}
    ready: List[Tuple[int, int]] = [
        (priority[nid], nid) for nid, count in remaining.items() if count == 0
    ]
    heapq.heapify(ready)

    cycle_of: Dict[int, int] = {}
    ops: List[ScheduledOp] = []
    scheduled = 0
    total_ops = len(preds)
    while ready:
        _, nid = heapq.heappop(ready)
        node = netlist.nodes[nid]
        slot = slot_for_kind(node.kind)
        earliest = 1 + max((cycle_of[p] for p in preds[nid]), default=0)
        cycle, index = grid.place(slot, earliest)
        mcc, unit = _physical(resources, slot, index)
        cycle_of[nid] = cycle
        ops.append(ScheduledOp(nid, slot, cycle, mcc, unit))
        scheduled += 1
        for succ in succs[nid]:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(ready, (priority[succ], succ))
    if scheduled != total_ops:
        raise SchedulingError(
            f"scheduled {scheduled} of {total_ops} ops; the netlist has a cycle"
        )

    total_cycles = grid.max_cycle
    max_live, spills = _pressure_pass(
        netlist, resources, cycle_of, total_cycles, preds, succs
    )
    ops.sort(key=lambda op: (op.cycle, op.slot.value, op.mcc, op.unit))
    return FoldingSchedule(
        netlist=netlist,
        resources=resources,
        ops=ops,
        compute_cycles=total_cycles,
        max_live_bits=max_live,
        spills=spills,
        algorithm="list",
    )


def level_schedule(netlist: Netlist, resources: TileResources) -> FoldingSchedule:
    """The paper's level-partition folding (ablation baseline)."""
    _reject_unmapped(netlist, resources)
    preds, succs = op_dependences(netlist)
    graph = level_graph(netlist)
    grid = _SlotGrid(resources)
    cycle_of: Dict[int, int] = {}
    ops: List[ScheduledOp] = []
    level_start = 1
    for level_nodes in graph.levels:
        # Each level folds into enough cycles for its widest resource.
        demand: Dict[OpSlot, int] = {slot: 0 for slot in OpSlot}
        for nid in level_nodes:
            demand[slot_for_kind(netlist.nodes[nid].kind)] += 1
        span = max(
            (-(-count // resources.slots(slot)))
            for slot, count in demand.items()
            if count
        )
        placed: Dict[OpSlot, int] = {slot: 0 for slot in OpSlot}
        for nid in level_nodes:
            slot = slot_for_kind(netlist.nodes[nid].kind)
            position = placed[slot]
            placed[slot] += 1
            cycle = level_start + position // resources.slots(slot)
            index = position % resources.slots(slot)
            mcc, unit = _physical(resources, slot, index)
            cycle_of[nid] = cycle
            ops.append(ScheduledOp(nid, slot, cycle, mcc, unit))
        level_start += span
    total_cycles = level_start - 1
    max_live, spills = _pressure_pass(
        netlist, resources, cycle_of, total_cycles, preds, succs
    )
    ops.sort(key=lambda op: (op.cycle, op.slot.value, op.mcc, op.unit))
    return FoldingSchedule(
        netlist=netlist,
        resources=resources,
        ops=ops,
        compute_cycles=total_cycles,
        max_live_bits=max_live,
        spills=spills,
        algorithm="level",
    )


def _reject_unmapped(netlist: Netlist, resources: TileResources) -> None:
    limit = resources.lut_inputs
    for node in netlist.nodes:
        if node.kind is NodeKind.GATE:
            raise SchedulingError(
                "netlist contains raw gates; run technology_map first"
            )
        if node.kind is NodeKind.LUT and node.payload[0] > limit:  # type: ignore[index]
            raise SchedulingError(
                f"netlist contains a "  # type: ignore[index]
                f"{node.payload[0]}-input LUT but the "
                f"tile is configured for {limit}-input LUTs; re-map with "
                f"k={limit}"
            )
