"""Configuration bitstream generation.

The paper stores per-step LUT configurations in *sequential rows* of
each compute sub-array ("we store the configuration bits of each level
in sequential addresses in the sub-arrays, and reuse the existing
address busses to step through addresses", Sec. III-B) and the operand
crossbar configuration in the way's otherwise-idle tag/state arrays.

``generate_config`` lays a :class:`FoldingSchedule` out exactly that
way: for every folding cycle it produces

* one 32-bit LUT configuration word per (MCC, LUT unit) — the LUT's
  truth table, zero (a constant-0 LUT) for idle units, and
* a crossbar descriptor per MCC listing which latched values feed the
  LUT inputs and the MAC that cycle (packed into tag-array words for
  the size/energy accounting).

The image knows whether it fits the sub-array row budget; when it does
not, the executor/timing layers charge configuration reloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..circuits.netlist import NodeKind
from ..errors import CapacityError
from .schedule import FoldingSchedule, OpSlot

# A crossbar source selector: enough bits to index the 256-entry FF
# bank plus the bus/MAC/latch tap points.
XBAR_SELECT_BITS = 10


@dataclass
class ConfigImage:
    """The physical layout of one accelerator configuration."""

    schedule: FoldingSchedule
    # lut_words[mcc][unit] -> np.ndarray of one 32-bit word per cycle.
    lut_words: List[List[np.ndarray]]
    # xbar_words[mcc] -> one packed descriptor word-count per cycle.
    xbar_words_per_cycle: int
    cycles: int
    rows_per_subarray: int

    @property
    def lut_config_words(self) -> int:
        """Total LUT configuration words across the tile."""
        return sum(len(words) for per_mcc in self.lut_words for words in per_mcc)

    @property
    def xbar_config_words(self) -> int:
        return self.cycles * self.xbar_words_per_cycle * len(self.lut_words)

    @property
    def total_words(self) -> int:
        return self.lut_config_words + self.xbar_config_words

    @property
    def total_bytes(self) -> int:
        return self.total_words * 4

    @property
    def fits_subarrays(self) -> bool:
        """Do all folding steps fit the sub-array rows without reloads?"""
        return self.cycles <= self.rows_per_subarray

    def checksum(self) -> int:
        """A stable digest of the LUT bitstream.

        The CC Ctrl can verify a loaded configuration against this
        (see FoldedExecutor.verify_configuration) to catch corrupted
        or stale sub-array contents before a run.
        """
        digest = 0xFFFFFFFF
        for per_mcc in self.lut_words:
            for column in per_mcc:
                for word in column:
                    digest ^= int(word)
                    digest = ((digest << 5) | (digest >> 27)) & 0xFFFFFFFF
        return digest

    def delta_words(self, other: "ConfigImage") -> int:
        """Config words that must be rewritten to replace ``other``.

        The unit of reconfiguration is a sub-array row: a folding cycle
        whose LUT words match the resident image on every MCC keeps its
        row (and its crossbar descriptors) in place, while a changed or
        new cycle rewrites its LUT words plus that cycle's crossbar
        words on every MCC.  Structurally different images (different
        MCC count, stored-unit count, or row budget) cannot share rows
        and pay the full rewrite.
        """
        if (len(self.lut_words) != len(other.lut_words)
                or self.rows_per_subarray != other.rows_per_subarray
                or self.xbar_words_per_cycle != other.xbar_words_per_cycle
                or any(
                    len(mine) != len(theirs)
                    for mine, theirs in zip(self.lut_words, other.lut_words)
                )):
            return self.total_words
        shared = min(self.cycles, other.cycles)
        changed = [cycle >= shared for cycle in range(self.cycles)]
        for per_mcc, other_mcc in zip(self.lut_words, other.lut_words):
            for column, other_column in zip(per_mcc, other_mcc):
                diff = np.nonzero(column[:shared] != other_column[:shared])[0]
                for cycle in diff:
                    changed[int(cycle)] = True
        mccs = len(self.lut_words)
        units = len(self.lut_words[0]) if self.lut_words else 0
        words_per_cycle = mccs * (units + self.xbar_words_per_cycle)
        return sum(changed) * words_per_cycle

    @property
    def reload_segments(self) -> int:
        """Config segments needed when the schedule exceeds the rows.

        Segment 0 is loaded up front; each further segment is a
        mid-run reconfiguration the timing model must charge.
        """
        if self.cycles == 0:
            return 1
        return -(-self.cycles // self.rows_per_subarray)


def generate_xbar_config(schedule: FoldingSchedule, allocation) -> dict:
    """Concrete crossbar select fields per (cycle, mcc).

    Each LUT input and MAC operand of each folding step resolves to a
    physical source: ``("reg", mcc, bit_offset)`` for a value latched
    in an FF bank, ``("const",)`` for constants baked into the step,
    or ``("bus",)`` for the operand data path.  These are the bits the
    paper stores in the way's tag/state arrays (Sec. III-B); the sized
    estimate in :class:`ConfigImage` covers their storage cost.

    ``allocation`` is a :class:`~repro.folding.regalloc.RegisterAllocation`
    for the same schedule.
    """
    from ..circuits.netlist import NodeKind

    netlist = schedule.netlist

    def source_of(nid: int, cycle: int):
        node = netlist.nodes[nid]
        if node.kind in (NodeKind.CONST, NodeKind.WORD_CONST):
            return ("const",)
        if node.kind in (NodeKind.BIT_INPUT, NodeKind.WORD_INPUT):
            return ("bus",)
        if node.kind is NodeKind.BITSLICE:
            base = source_of(node.fanins[0], cycle)
            if base[0] == "reg":
                return ("reg", base[1], base[2] + node.payload)
            return base
        if node.kind is NodeKind.PACK:
            # Packed words are wiring; each consumer reads the bit
            # sources directly. Report the first bit's source.
            return source_of(node.fanins[0], cycle)
        if node.kind is NodeKind.FLIPFLOP:
            return ("state",)
        placements = allocation.placements.get(nid, [])
        for placement in placements:
            if placement.start_cycle <= cycle <= placement.end_cycle:
                return ("reg", placement.mcc, placement.offset)
        return ("spilled",)

    selects = {}
    for op in schedule.ops:
        if op.slot is OpSlot.BUS:
            continue
        node = netlist.nodes[op.nid]
        selects[(op.cycle, op.mcc, op.unit, op.slot.value)] = tuple(
            source_of(fanin, op.cycle) for fanin in node.fanins
        )
    return selects


def _lut_table(schedule: FoldingSchedule, nid: int) -> int:
    node = schedule.netlist.nodes[nid]
    assert node.kind is NodeKind.LUT
    _, table = node.payload  # type: ignore[misc]
    return table & 0xFFFFFFFF


def generate_config(
    schedule: FoldingSchedule, rows_per_subarray: int = 2048
) -> ConfigImage:
    """Lay out LUT truth tables row-by-row per (MCC, unit)."""
    resources = schedule.resources
    cycles = schedule.compute_cycles
    mccs = resources.mccs
    units = resources.luts_per_mcc
    if units > 4 and resources.lut_inputs == 5:
        raise CapacityError("a sub-array provides at most 4 x 5-LUT words")

    lut_words: List[List[np.ndarray]] = [
        [np.zeros(cycles, dtype=np.uint32) for _ in range(units)]
        for _ in range(mccs)
    ]
    for op in schedule.ops:
        if op.slot is not OpSlot.LUT:
            continue
        table = _lut_table(schedule, op.nid)
        # In 4-LUT mode two 16-bit tables share a 32-bit row; model the
        # packing by placing the table in the unit's half-word.
        if resources.lut_inputs == 4:
            row = op.unit // 2
            shift = 16 * (op.unit % 2)
            lut_words[op.mcc][row][op.cycle - 1] |= np.uint32(
                (table & 0xFFFF) << shift
            )
        else:
            lut_words[op.mcc][op.unit][op.cycle - 1] = np.uint32(table)

    # Crossbar: each cycle each MCC routes up to (units * lut_inputs)
    # LUT operands + 3 MAC operands + 1 bus address source.
    selects = units * resources.lut_inputs + 3 + 1
    xbar_bits = selects * XBAR_SELECT_BITS
    xbar_words = -(-xbar_bits // 32)

    # In 4-LUT mode the packed rows halve.
    stored_units = units if resources.lut_inputs == 5 else -(-units // 2)
    packed = [
        [lut_words[m][u] for u in range(stored_units)] for m in range(mccs)
    ]
    return ConfigImage(
        schedule=schedule,
        lut_words=packed,
        xbar_words_per_cycle=xbar_words,
        cycles=cycles,
        rows_per_subarray=rows_per_subarray,
    )
