"""Folding-schedule data structures.

A :class:`FoldingSchedule` assigns every *op* node of a mapped netlist
to a (cycle, MCC, slot) triple subject to the per-cycle resources of a
micro compute cluster (paper Sec. III-D: "On each time step the
cluster can access up to four 5-LUTs or eight 4-LUTs, one MAC, and one
bus operation").

The schedule is the single source of truth shared by:

* the functional folded executor (``repro.freac.executor``),
* the configuration-bitstream generator (``repro.folding.config``),
* the timing model (``repro.freac.timing``), and
* the validator (``repro.folding.validate``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuits.netlist import Netlist, NodeKind
from ..errors import ConfigurationError
from ..params import MccParams


class OpSlot(enum.Enum):
    """The MCC resource class an op occupies."""

    LUT = "lut"
    MAC = "mac"
    BUS = "bus"


_KIND_TO_SLOT = {
    NodeKind.LUT: OpSlot.LUT,
    NodeKind.MAC: OpSlot.MAC,
    NodeKind.BUS_LOAD: OpSlot.BUS,
    NodeKind.BUS_STORE: OpSlot.BUS,
}


def slot_for_kind(kind: NodeKind) -> OpSlot:
    try:
        return _KIND_TO_SLOT[kind]
    except KeyError:
        raise ConfigurationError(f"node kind {kind} does not occupy a slot")


@dataclass(frozen=True)
class TileResources:
    """Per-cycle resources of an accelerator tile of ``mccs`` clusters.

    ``lut_inputs`` selects 5-LUT mode (4 LUTs/cycle/MCC) or 4-LUT mode
    (8 LUTs/cycle/MCC) — paper Sec. III-A.
    """

    mccs: int = 1
    lut_inputs: int = 5
    mcc: MccParams = field(default_factory=MccParams)

    def __post_init__(self) -> None:
        if self.mccs < 1:
            raise ConfigurationError("a tile needs at least one MCC")
        # Raises for unsupported widths:
        self.mcc.lut_slots(self.lut_inputs)

    @property
    def luts_per_cycle(self) -> int:
        return self.mccs * self.mcc.lut_slots(self.lut_inputs)

    @property
    def luts_per_mcc(self) -> int:
        return self.mcc.lut_slots(self.lut_inputs)

    @property
    def macs_per_cycle(self) -> int:
        return self.mccs * self.mcc.macs_per_cycle

    @property
    def bus_ops_per_cycle(self) -> int:
        return self.mccs * self.mcc.bus_ops_per_cycle

    @property
    def ff_bits(self) -> int:
        return self.mccs * self.mcc.register_file_bits

    def slots(self, slot: OpSlot) -> int:
        if slot is OpSlot.LUT:
            return self.luts_per_cycle
        if slot is OpSlot.MAC:
            return self.macs_per_cycle
        return self.bus_ops_per_cycle


@dataclass(frozen=True)
class ScheduledOp:
    """One op pinned to a cycle and a physical slot."""

    nid: int
    slot: OpSlot
    cycle: int       # 1-based folding step
    mcc: int         # cluster index within the tile
    unit: int        # LUT slot within the MCC (0 for MAC/BUS ops)


@dataclass
class SpillInfo:
    """Register-file pressure handling (see DESIGN.md Sec. 5).

    When the live set exceeds the tile's flip-flop capacity, values
    are spilled to the scratchpad.  Spills are charged as extra bus
    traffic and extra folding cycles rather than being woven into the
    op grid — a timing-accuracy compromise documented in DESIGN.md.
    """

    spilled_values: int = 0
    spill_words: int = 0
    spill_cycles: int = 0
    spilled_nids: List[int] = field(default_factory=list)
    # Scratchpad row per spilled value, parallel to ``spilled_nids``.
    # Empty means the identity assignment (i-th spill -> row i); the
    # dataflow tier reads this to prove rows are never clobbered while
    # a spilled value is resident.
    spill_rows: List[int] = field(default_factory=list)

    def row_of(self, index: int) -> int:
        """Scratchpad row of the ``index``-th spilled value."""
        if index < len(self.spill_rows):
            return self.spill_rows[index]
        return index


@dataclass
class FoldingSchedule:
    """The complete folding solution for one netlist on one tile."""

    netlist: Netlist
    resources: TileResources
    ops: List[ScheduledOp]
    compute_cycles: int                 # cycles occupied by the op grid
    max_live_bits: int                  # post-spill peak FF occupancy
    spills: SpillInfo = field(default_factory=SpillInfo)
    algorithm: str = "list"

    def __post_init__(self) -> None:
        self.op_by_nid: Dict[int, ScheduledOp] = {op.nid: op for op in self.ops}

    @property
    def fold_cycles(self) -> int:
        """Total folding steps per invocation, including spill stalls.

        This is the N in "effective clock rate = CacheClock / N"
        (paper Sec. IV).
        """
        return self.compute_cycles + self.spills.spill_cycles

    @property
    def lut_ops(self) -> int:
        return sum(1 for op in self.ops if op.slot is OpSlot.LUT)

    @property
    def mac_ops(self) -> int:
        return sum(1 for op in self.ops if op.slot is OpSlot.MAC)

    @property
    def bus_words(self) -> int:
        """Bus words moved per invocation (operand traffic + spills)."""
        demand = sum(1 for op in self.ops if op.slot is OpSlot.BUS)
        return demand + self.spills.spill_words

    def effective_clock_hz(self, cache_clock_hz: float) -> float:
        if self.fold_cycles == 0:
            return cache_clock_hz
        return cache_clock_hz / self.fold_cycles

    def utilization(self) -> Dict[str, float]:
        """Fraction of each resource's slot-cycles actually used."""
        cycles = max(self.compute_cycles, 1)
        return {
            "lut": self.lut_ops / (cycles * self.resources.luts_per_cycle),
            "mac": self.mac_ops / (cycles * self.resources.macs_per_cycle),
            "bus": sum(1 for op in self.ops if op.slot is OpSlot.BUS)
            / (cycles * self.resources.bus_ops_per_cycle),
        }

    def ops_at(self, cycle: int) -> List[ScheduledOp]:
        return [op for op in self.ops if op.cycle == cycle]

    def cycle_of(self, nid: int) -> Optional[int]:
        op = self.op_by_nid.get(nid)
        return op.cycle if op else None

    def summary(self) -> Dict[str, object]:
        return {
            "circuit": self.netlist.name,
            "algorithm": self.algorithm,
            "mccs": self.resources.mccs,
            "fold_cycles": self.fold_cycles,
            "compute_cycles": self.compute_cycles,
            "lut_ops": self.lut_ops,
            "mac_ops": self.mac_ops,
            "bus_words": self.bus_words,
            "spilled_values": self.spills.spilled_values,
            "max_live_bits": self.max_live_bits,
            "utilization": self.utilization(),
        }
