"""Logic folding: scheduling circuits onto micro compute clusters.

This is the paper's primary contribution (Sec. III-IV): trade clock
cycles for area by re-configuring a handful of LUTs every cycle from
sub-array rows.  A circuit folded N times runs at CacheClock/N.
"""

from .schedule import (
    FoldingSchedule,
    OpSlot,
    ScheduledOp,
    TileResources,
)
from .scheduler import level_schedule, list_schedule
from .config import ConfigImage, generate_config
from .regalloc import RegisterAllocation, allocate_registers
from .validate import collect_violations, validate_schedule

__all__ = [
    "FoldingSchedule",
    "OpSlot",
    "ScheduledOp",
    "TileResources",
    "list_schedule",
    "level_schedule",
    "ConfigImage",
    "generate_config",
    "RegisterAllocation",
    "allocate_registers",
    "collect_violations",
    "validate_schedule",
]
