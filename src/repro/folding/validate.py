"""Schedule legality checking.

``validate_schedule`` re-derives every constraint from scratch (it
shares no bookkeeping with the schedulers), so a passing check is
independent evidence the schedule is executable:

1. every op node of the netlist is scheduled exactly once;
2. dependence: every op starts at least one cycle after each producer
   whose value it consumes (outputs are latched, Sec. III-A);
3. per-cycle resource bounds: LUT/MAC/bus slots per MCC, and no two
   ops share a physical (cycle, mcc, unit) placement;
4. LUT arities fit the configured LUT width;
5. (strict mode) the post-spill live set fits the FF banks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Set

from ..circuits.netlist import Netlist, NodeKind
from ..errors import ScheduleViolation
from .schedule import FoldingSchedule, OpSlot


def validate_schedule(schedule: FoldingSchedule, *, strict: bool = False) -> None:
    """Raise :class:`ScheduleViolation` on the first broken constraint."""
    netlist = schedule.netlist
    resources = schedule.resources

    # 1. Coverage -------------------------------------------------------
    op_nids = {node.nid for node in netlist.nodes if node.is_op}
    scheduled_nids = [op.nid for op in schedule.ops]
    if len(scheduled_nids) != len(set(scheduled_nids)):
        raise ScheduleViolation(0, "an op is scheduled more than once")
    if set(scheduled_nids) != op_nids:
        missing = sorted(op_nids - set(scheduled_nids))[:5]
        raise ScheduleViolation(0, f"unscheduled ops: {missing}")

    cycle_of = {op.nid: op.cycle for op in schedule.ops}

    # 2. Dependences (through wiring) -----------------------------------
    # value_cycle[n] = latest cycle at which node n's value becomes
    # available (op nodes: their own cycle; wiring: max of fanins).
    value_cycle: Dict[int, int] = {}
    for nid in netlist.topo_order():
        node = netlist.nodes[nid]
        if node.kind is NodeKind.FLIPFLOP:
            value_cycle[nid] = 0  # stored state precedes every cycle
            continue
        producer_cycle = max(
            (value_cycle[f] for f in node.fanins), default=0
        )
        if node.is_op:
            own = cycle_of[nid]
            if own <= producer_cycle:
                raise ScheduleViolation(
                    own,
                    f"op {nid} ({node.kind.value}) starts at cycle {own} but a "
                    f"producer is only latched after cycle {producer_cycle}",
                )
            value_cycle[nid] = own
        else:
            value_cycle[nid] = producer_cycle

    # 3. Resource bounds -------------------------------------------------
    per_cycle: Dict[int, Dict[OpSlot, int]] = defaultdict(
        lambda: {slot: 0 for slot in OpSlot}
    )
    placements: Set[tuple] = set()
    for op in schedule.ops:
        if op.cycle < 1:
            raise ScheduleViolation(op.cycle, "cycles are 1-based")
        per_cycle[op.cycle][op.slot] += 1
        if not 0 <= op.mcc < resources.mccs:
            raise ScheduleViolation(op.cycle, f"op {op.nid} uses MCC {op.mcc}")
        if op.slot is OpSlot.LUT and not 0 <= op.unit < resources.luts_per_mcc:
            raise ScheduleViolation(op.cycle, f"op {op.nid} uses LUT unit {op.unit}")
        key = (op.cycle, op.slot, op.mcc, op.unit)
        if key in placements:
            raise ScheduleViolation(
                op.cycle, f"two ops share physical slot {key[1:]}",
            )
        placements.add(key)
    for cycle, usage in per_cycle.items():
        for slot, used in usage.items():
            if used > resources.slots(slot):
                raise ScheduleViolation(
                    cycle,
                    f"{used} {slot.value} ops exceed the tile's "
                    f"{resources.slots(slot)} slots",
                )

    # 4. LUT arity --------------------------------------------------------
    for op in schedule.ops:
        node = netlist.nodes[op.nid]
        if node.kind is NodeKind.LUT:
            width = node.payload[0]  # type: ignore[index]
            if width > resources.lut_inputs:
                raise ScheduleViolation(
                    op.cycle,
                    f"{width}-input LUT exceeds the {resources.lut_inputs}-input "
                    "mux tree",
                )

    # 5. Register pressure ------------------------------------------------
    if strict and schedule.max_live_bits > resources.ff_bits:
        raise ScheduleViolation(
            0,
            f"post-spill live set ({schedule.max_live_bits} bits) exceeds the "
            f"FF bank capacity ({resources.ff_bits} bits)",
        )
