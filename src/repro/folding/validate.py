"""Schedule legality checking.

The constraints themselves live in the ``repro.analysis`` schedule
rule pack (rules SC001-SC010; see ``docs/analysis.md``), which
re-derives every one from scratch — it shares no bookkeeping with the
schedulers, so a passing check is independent evidence the schedule is
executable:

1. every op node of the netlist is scheduled exactly once;
2. dependence: every op starts at least one cycle after each producer
   whose value it consumes (outputs are latched, Sec. III-A);
3. per-cycle resource bounds: LUT/MAC/bus slots per MCC, and no two
   ops share a physical (cycle, mcc, unit) placement;
4. LUT arities fit the configured LUT width;
5. (strict mode) the post-spill live set fits the FF banks.

``validate_schedule`` keeps its historical raise-on-first signature as
a thin wrapper; :func:`collect_violations` returns the *complete*
report instead of stopping at the first broken constraint.
"""

from __future__ import annotations

from ..errors import ScheduleViolation
from .schedule import FoldingSchedule


def collect_violations(schedule: FoldingSchedule, *, strict: bool = False):
    """Every violated constraint, as an ``AnalysisReport``.

    Unlike :func:`validate_schedule` this does not stop at the first
    finding: the report carries one diagnostic per violation, plus any
    warnings (register-pressure and bus-saturation trends) that strict
    mode would escalate.
    """
    from ..analysis import analyze_schedule  # deferred: import cycle

    return analyze_schedule(schedule, strict=strict)


def validate_schedule(schedule: FoldingSchedule, *, strict: bool = False) -> None:
    """Raise :class:`ScheduleViolation` on the first broken constraint."""
    report = collect_violations(schedule, strict=strict)
    for diagnostic in report.errors:
        raise ScheduleViolation(diagnostic.loc("cycle", 0), diagnostic.message)
