"""Register allocation: live values -> physical FF-bank bits.

The folding schedule says *when* each value exists; the micro compute
cluster stores it in a 256-bit flip-flop bank, and the operand
crossbar's configuration (held in the tag arrays, Sec. III-B) selects
*which physical bits* feed each LUT/MAC input every cycle.  This
module performs that assignment: a linear-scan allocator over the
schedule's live intervals, placing 1-bit LUT results and 32-bit
word values into concrete bit ranges of concrete MCC banks.

Values prefer their producer's bank; when it is full they overflow to
any bank in the tile (the switch fabric routes cross-cluster operands
— Sec. III-E).  Scheduler-spilled values only occupy their short
residency stubs.  The allocation is independently validated: no two
simultaneously-live values may overlap a single bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuits.netlist import NodeKind
from ..errors import CapacityError
from .schedule import FoldingSchedule

_VALUE_BITS = {
    NodeKind.LUT: 1,
    NodeKind.MAC: 32,
    NodeKind.BUS_LOAD: 32,
}


@dataclass(frozen=True)
class Placement:
    """One value's home: bits [offset, offset+width) of an MCC's bank."""

    nid: int
    mcc: int
    offset: int
    width: int
    start_cycle: int
    end_cycle: int


@dataclass
class RegisterAllocation:
    """The complete physical assignment for one schedule.

    Spilled values have two placements (their residency stubs), so
    ``placements`` maps a value to a list.
    """

    schedule: FoldingSchedule
    placements: Dict[int, List[Placement]] = field(default_factory=dict)
    overflowed: int = 0          # values placed outside their producer MCC
    unplaced: List[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.unplaced

    def all_placements(self) -> List[Placement]:
        return [p for group in self.placements.values() for p in group]

    def peak_bits_per_mcc(self) -> Dict[int, int]:
        peaks: Dict[int, int] = {}
        for placement in self.all_placements():
            top = placement.offset + placement.width
            peaks[placement.mcc] = max(peaks.get(placement.mcc, 0), top)
        return peaks

    def validate(self) -> None:
        """No two overlapping-lifetime values may share a bank bit."""
        by_mcc: Dict[int, List[Placement]] = {}
        for placement in self.all_placements():
            by_mcc.setdefault(placement.mcc, []).append(placement)
        for mcc, placements in by_mcc.items():
            placements.sort(key=lambda p: p.offset)
            for i, a in enumerate(placements):
                for b in placements[i + 1 :]:
                    if b.offset >= a.offset + a.width:
                        break
                    lifetimes_overlap = not (
                        a.end_cycle <= b.start_cycle
                        or b.end_cycle <= a.start_cycle
                    )
                    if lifetimes_overlap and a.nid != b.nid:
                        raise CapacityError(
                            f"values {a.nid} and {b.nid} overlap in MCC "
                            f"{mcc} bits [{b.offset}, {a.offset + a.width})"
                        )


class _Bank:
    """A free-bit tracker with first-fit contiguous allocation."""

    def __init__(self, bits: int) -> None:
        self.bits = bits
        # Sorted list of (offset, length) free runs.
        self.free: List[Tuple[int, int]] = [(0, bits)]

    def allocate(self, width: int) -> Optional[int]:
        """First-fit for single bits, last-fit (top of bank) for words.

        Segregating widths keeps 1-bit LUT results from fragmenting
        the contiguous runs 32-bit values need.
        """
        if width == 1:
            for index, (offset, length) in enumerate(self.free):
                if length >= width:
                    if length == width:
                        self.free.pop(index)
                    else:
                        self.free[index] = (offset + width, length - width)
                    return offset
            return None
        for index in range(len(self.free) - 1, -1, -1):
            offset, length = self.free[index]
            if length >= width:
                if length == width:
                    self.free.pop(index)
                else:
                    self.free[index] = (offset, length - width)
                return offset + length - width
        return None

    def release(self, offset: int, width: int) -> None:
        self.free.append((offset, width))
        self.free.sort()
        merged: List[Tuple[int, int]] = []
        for run_offset, run_length in self.free:
            if merged and merged[-1][0] + merged[-1][1] == run_offset:
                last_offset, last_length = merged[-1]
                merged[-1] = (last_offset, last_length + run_length)
            else:
                merged.append((run_offset, run_length))
        self.free = merged


def _live_intervals(schedule: FoldingSchedule) -> List[Tuple[int, int, int, int]]:
    """(def, last_use, width, nid) per value, post-spill residency."""
    from .scheduler import _op_dependences, _output_ops

    netlist = schedule.netlist
    preds, succs = _op_dependences(netlist)
    output_ops = _output_ops(netlist)
    cycle_of = {op.nid: op.cycle for op in schedule.ops}
    total = schedule.compute_cycles
    spilled = set(schedule.spills.spilled_nids)
    intervals: List[Tuple[int, int, int, int]] = []
    for nid, cycle in cycle_of.items():
        node = netlist.nodes[nid]
        width = _VALUE_BITS.get(node.kind)
        if width is None:
            continue
        uses = [cycle_of[s] for s in succs[nid]]
        last_use = max(uses, default=cycle)
        if nid in output_ops:
            last_use = max(last_use, total)
        if last_use <= cycle:
            continue
        if nid in spilled:
            # Spilled values are bank-resident only just after their
            # definition and just before their reload-use.
            intervals.append((cycle, cycle + 1, width, nid))
            if last_use - 1 > cycle + 1:
                intervals.append((last_use - 1, last_use, width, nid))
        else:
            intervals.append((cycle, last_use, width, nid))
    return intervals


def allocate_registers(schedule: FoldingSchedule) -> RegisterAllocation:
    """Linear-scan allocation of all live values into the FF banks."""
    resources = schedule.resources
    banks = [
        _Bank(resources.mcc.register_file_bits) for _ in range(resources.mccs)
    ]
    producer_mcc = {op.nid: op.mcc for op in schedule.ops}
    allocation = RegisterAllocation(schedule=schedule)

    intervals = sorted(_live_intervals(schedule))
    # active: (end_cycle, mcc, offset, width)
    active: List[Tuple[int, int, int, int]] = []
    for start, end, width, nid in intervals:
        # Expire finished lifetimes.
        still_active = []
        for entry in active:
            if entry[0] <= start:
                banks[entry[1]].release(entry[2], entry[3])
            else:
                still_active.append(entry)
        active = still_active

        home = producer_mcc.get(nid, 0)
        offset = banks[home].allocate(width)
        mcc = home
        if offset is None:
            for candidate in range(resources.mccs):
                if candidate == home:
                    continue
                offset = banks[candidate].allocate(width)
                if offset is not None:
                    mcc = candidate
                    allocation.overflowed += 1
                    break
        if offset is None:
            allocation.unplaced.append(nid)
            continue
        active.append((end, mcc, offset, width))
        allocation.placements.setdefault(nid, []).append(
            Placement(
                nid=nid, mcc=mcc, offset=offset, width=width,
                start_cycle=start, end_cycle=end,
            )
        )
    return allocation
