"""Folding-schedule (de)serialisation.

Together with :mod:`repro.circuits.io` this lets a mapped + folded
accelerator be written to disk and reloaded without re-running
synthesis or scheduling — the experiment harness uses it as an
on-disk cache keyed by (benchmark, K, tile size, algorithm).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from ..circuits.io import netlist_from_dict, netlist_to_dict
from ..errors import SchedulingError
from .schedule import (
    FoldingSchedule,
    OpSlot,
    ScheduledOp,
    SpillInfo,
    TileResources,
)

FORMAT_VERSION = 1


def schedule_to_dict(schedule: FoldingSchedule) -> Dict:
    return {
        "version": FORMAT_VERSION,
        "netlist": netlist_to_dict(schedule.netlist),
        "resources": {
            "mccs": schedule.resources.mccs,
            "lut_inputs": schedule.resources.lut_inputs,
        },
        "ops": [
            [op.nid, op.slot.value, op.cycle, op.mcc, op.unit]
            for op in schedule.ops
        ],
        "compute_cycles": schedule.compute_cycles,
        "max_live_bits": schedule.max_live_bits,
        "spills": {
            "spilled_values": schedule.spills.spilled_values,
            "spill_words": schedule.spills.spill_words,
            "spill_cycles": schedule.spills.spill_cycles,
            "spilled_nids": list(schedule.spills.spilled_nids),
            "spill_rows": list(schedule.spills.spill_rows),
        },
        "algorithm": schedule.algorithm,
    }


def schedule_from_dict(data: Dict) -> FoldingSchedule:
    if data.get("version") != FORMAT_VERSION:
        raise SchedulingError(
            f"schedule format version {data.get('version')!r} not supported"
        )
    netlist = netlist_from_dict(data["netlist"])
    resources = TileResources(
        mccs=data["resources"]["mccs"],
        lut_inputs=data["resources"]["lut_inputs"],
    )
    ops = [
        ScheduledOp(nid, OpSlot(slot), cycle, mcc, unit)
        for nid, slot, cycle, mcc, unit in data["ops"]
    ]
    spills = SpillInfo(**data["spills"])
    return FoldingSchedule(
        netlist=netlist,
        resources=resources,
        ops=ops,
        compute_cycles=data["compute_cycles"],
        max_live_bits=data["max_live_bits"],
        spills=spills,
        algorithm=data["algorithm"],
    )


def save_schedule(schedule: FoldingSchedule, path: Path | str) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(schedule_to_dict(schedule)))


def load_schedule(path: Path | str) -> FoldingSchedule:
    return schedule_from_dict(json.loads(Path(path).read_text()))
