"""``RunRequest``: one frozen bundle of run/submit knobs.

The CLI front ends (``freac run``, ``freac submit``, ``freac serve``,
``freac trace``, ``freac metrics``) all accept the same cluster of
options — benchmark, batch size, tile shape, LUT width, execution
engine, seed — but used to pull them out of ``argparse`` namespaces
ad hoc, each with its own defaults.  ``RunRequest`` consolidates them:
one frozen, validated dataclass built once (usually via
:meth:`RunRequest.from_args`) and handed to whichever layer executes
it — :meth:`repro.service.AcceleratorService.submit_request` or
:func:`repro.freac.runner.run_workload`.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from .errors import RequestError
from .freac.engine import EngineLike, resolve_engine


@dataclass(frozen=True)
class RunRequest:
    """What one CLI invocation asks the stack to execute."""

    benchmark: str
    items: int = 8
    mccs_per_tile: int = 1
    lut_inputs: int = 5
    #: Accepts any EngineLike (spec, bare name, or None for the
    #: default) and normalizes to the spec's name, so the frozen
    #: request stays a plain picklable string bundle.
    engine: EngineLike = None
    seed: int = 0
    slices: int = 1                    # device slices the job spans
    priority: int = 0
    timeout_s: Optional[float] = None
    preflight: bool = True             # lint netlist+schedule up front
    telemetry: bool = False            # wire a live Telemetry through
    optimize: bool = False             # serve fold-count-minimized programs
    opt_budget_s: Optional[float] = None  # optimizer time box override

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmark", self.benchmark.upper())
        object.__setattr__(self, "engine", resolve_engine(self.engine).name)
        if self.items < 1:
            raise RequestError("a run needs at least one item")
        if self.mccs_per_tile < 1:
            raise RequestError("a tile needs at least one MCC")
        if self.opt_budget_s is not None and self.opt_budget_s <= 0:
            raise RequestError("the optimizer budget must be positive")

    # Maps dataclass fields to the argparse attribute(s) that feed
    # them, in priority order (``freac submit`` says --job-slices where
    # ``freac run`` says --slices for a different knob, so job slices
    # only ever come from job_slices).
    _ARG_SOURCES = {
        "benchmark": ("benchmark",),
        "items": ("items",),
        "mccs_per_tile": ("tile", "mccs_per_tile"),
        "lut_inputs": ("lut_inputs",),
        "engine": ("engine",),
        "seed": ("seed",),
        "slices": ("job_slices",),
        "priority": ("priority",),
        "timeout_s": ("timeout_s",),
        "optimize": ("optimize",),
        "opt_budget_s": ("opt_budget_s",),
    }

    @classmethod
    def from_args(cls, args: argparse.Namespace, **overrides: Any
                  ) -> "RunRequest":
        """Build a request from an ``argparse`` namespace.

        Only attributes present on the namespace participate; missing
        ones keep their dataclass defaults, and keyword ``overrides``
        win over both (the trace front end passes ``telemetry=True``).
        """
        values: Dict[str, Any] = {}
        for name, sources in cls._ARG_SOURCES.items():
            for source in sources:
                value = getattr(args, source, None)
                if value is not None:
                    values[name] = value
                    break
        values.update(overrides)
        return cls(**values)

    def submit_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for ``AcceleratorService.submit``."""
        return {
            "priority": self.priority,
            "mccs_per_tile": self.mccs_per_tile,
            "lut_inputs": self.lut_inputs,
            "slices": self.slices,
            "timeout_s": self.timeout_s,
            "seed": self.seed,
            "engine": self.engine,
            "optimize": self.optimize,
            "opt_budget_s": self.opt_budget_s,
        }

    def replace(self, **changes: Any) -> "RunRequest":
        """A copy with ``changes`` applied (frozen-safe)."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values.update(changes)
        return RunRequest(**values)
