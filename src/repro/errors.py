"""Exception hierarchy for the FReaC Cache reproduction.

Every error raised by the library derives from :class:`ReproError` so
callers can catch one type at an API boundary.  Subclasses are grouped
by subsystem: circuits/synthesis, folding/scheduling, the cache
substrate, and the FReaC device model.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An architecture parameter set is inconsistent or out of range."""


class CircuitError(ReproError):
    """A netlist is malformed (cycles, bad arity, dangling references)."""


class SynthesisError(ReproError):
    """Technology mapping could not cover the circuit with K-LUTs."""


class SchedulingError(ReproError):
    """Logic folding could not produce a legal schedule."""


class ScheduleViolation(SchedulingError):
    """A produced schedule violates an MCC resource constraint.

    Raised by the schedule validator; carries the offending cycle and
    a human-readable description of the violated constraint.
    """

    def __init__(self, cycle: int, constraint: str) -> None:
        self.cycle = cycle
        self.constraint = constraint
        super().__init__(f"cycle {cycle}: {constraint}")


class OptimizerError(ReproError):
    """The optimal-mapping tier was misconfigured or misused.

    (An unknown backend, a backend whose solver library is not
    installed, an inconsistent cycle assignment handed to the schedule
    rebuilder — *not* an optimization that merely failed to improve,
    which falls back to the heuristic schedule silently.)
    """


class AnalysisError(ReproError):
    """The static-analysis framework itself was misused.

    (Bad rule registration, unknown rule ids, un-dispatchable
    artifacts — *not* findings about an artifact, which are collected
    as diagnostics in an ``AnalysisReport``.)
    """


class PreflightError(AnalysisError):
    """A pre-flight lint found error-severity diagnostics.

    Raised by the executor/runner gate before an artifact is allowed
    to touch the fabric; carries the complete ``AnalysisReport`` so
    callers see every violation, not just the first.
    """

    def __init__(self, stage: str, report) -> None:
        self.stage = stage
        self.report = report
        errors = report.errors
        head = "; ".join(f"{d.rule}: {d.message}" for d in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"pre-flight {stage} check failed with {len(errors)} "
            f"error(s): {head}{more}"
        )


class RequestError(ReproError, ValueError):
    """A caller-supplied request is invalid.

    Bad user input — an unknown benchmark, a dataset that does not
    match the requested batch size, a non-positive item count — as
    opposed to :class:`DeviceError`, which marks an illegal *device
    state* transition.  Derives from :class:`ValueError` so callers
    that treat the library as a plain Python API catch it naturally.
    """


class ServiceError(ReproError):
    """The serving layer was driven inconsistently.

    For example: asking for the result of a job id the service never
    issued, or pumping a service whose devices were torn down.
    """


class CacheError(ReproError):
    """The cache substrate was used inconsistently."""


class LockedWayError(CacheError):
    """A cache operation touched a way that is locked for compute."""


class DeviceError(ReproError):
    """The FReaC device was driven through an illegal state transition."""


class CapacityError(DeviceError):
    """A resource (scratchpad, config rows, FF bank) overflowed."""


class ProtocolError(DeviceError):
    """The host interface was used out of protocol order.

    For example: issuing RUN before configuration bits were written, or
    filling a scratchpad before ways were locked.
    """
