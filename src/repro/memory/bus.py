"""Shared-bus serialisation model.

Two places in FReaC Cache serialise on shared buses (paper Sec. II
observation 4 and Sec. III-D "Operand Movement"):

* data arrays in a way share one data bus, so line reads/writes move
  word by word;
* all accelerator tiles in a slice issue their lock-step memory
  requests onto the operand data path at once, and "the clusters will
  stall till all requests are serviced".

``SharedBus`` captures that with a simple occupancy model: each
requester transfers ``words`` bus words; concurrent requests from N
requesters take N times as long as one.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BusStats:
    transactions: int = 0
    words_moved: int = 0
    busy_cycles: int = 0
    stall_cycles: int = 0


@dataclass
class SharedBus:
    """A bus moving one ``width_bits`` word per cycle."""

    width_bits: int = 32
    stats: BusStats = field(default_factory=BusStats)

    def words_for_bytes(self, size_bytes: int) -> int:
        word_bytes = self.width_bits // 8
        return (size_bytes + word_bytes - 1) // word_bytes

    def transfer_cycles(self, words: int) -> int:
        """Cycles for one requester to move ``words`` words."""
        if words < 0:
            raise ValueError("cannot transfer a negative number of words")
        self.stats.transactions += 1
        self.stats.words_moved += words
        self.stats.busy_cycles += words
        return words

    def broadcast_cycles(self, words: int) -> int:
        """A broadcast occupies the bus once regardless of receivers."""
        return self.transfer_cycles(words)

    def contended_cycles(self, requesters: int, words_each: int) -> int:
        """Lock-step requests from ``requesters`` clients serialise.

        Every client waits until the last one is serviced, so each
        observes the full serialised latency; the excess over a private
        bus is recorded as stall cycles.
        """
        if requesters < 0:
            raise ValueError("requesters must be non-negative")
        if requesters == 0 or words_each == 0:
            return 0
        total = 0
        for _ in range(requesters):
            total += self.transfer_cycles(words_each)
        self.stats.stall_cycles += total - words_each
        return total
