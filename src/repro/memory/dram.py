"""DRAM timing and energy model (4 channels of DDR4-2400, Table I).

Bulk transfers are bandwidth-limited; single accesses pay the ~56 ns
access latency the paper's introduction quotes.  This is the cost
model behind way flushing ("flush speed is limited by off-chip memory
bandwidth", Sec. III-C) and behind CPU/FPGA baseline memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import DramParams


@dataclass
class DramModel:
    params: DramParams = None  # type: ignore[assignment]
    # Sustained fraction of peak bandwidth a real controller achieves.
    efficiency: float = 0.75

    def __post_init__(self) -> None:
        if self.params is None:
            self.params = DramParams()
        if not 0 < self.efficiency <= 1:
            raise ValueError("DRAM efficiency must be in (0, 1]")

    @property
    def sustained_bandwidth_bytes_s(self) -> float:
        return self.params.peak_bandwidth_bytes_s * self.efficiency

    def access_latency_s(self) -> float:
        """Latency of one isolated line access."""
        return self.params.access_latency_s

    def transfer_time_s(self, size_bytes: int) -> float:
        """Time to stream ``size_bytes`` to/from DRAM.

        One access latency to open the stream, then bandwidth-bound.
        """
        if size_bytes <= 0:
            return 0.0
        return (
            self.params.access_latency_s
            + size_bytes / self.sustained_bandwidth_bytes_s
        )

    def transfer_energy_j(self, size_bytes: int) -> float:
        return size_bytes * 8 * self.params.energy_per_bit_j

    def flush_time_s(self, dirty_bytes: int) -> float:
        """Time to write back ``dirty_bytes`` of flushed LLC lines.

        For a full 10 MB LLC this lands in the hundreds of
        microseconds, matching the paper's Sec. III-C estimate.
        """
        return self.transfer_time_s(dirty_bytes)
