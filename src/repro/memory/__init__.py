"""Off-chip memory and on-chip bus models."""

from .dram import DramModel
from .bus import SharedBus, BusStats

__all__ = ["DramModel", "SharedBus", "BusStats"]
