"""Diagnostics, reports, and the rule registry.

The analysis framework separates *what is wrong* (a
:class:`Diagnostic`) from *how it was found* (a :class:`Rule`) and
*what to do about it* (the caller's policy).  Rules never raise: they
yield findings, the runner stamps them with the rule's identity and
default severity, and an :class:`AnalysisReport` collects everything
so one pass over an artifact surfaces every defect at once — unlike
the original ``validate_schedule``, which stopped at the first.

Rule identifiers are stable strings (``NL``/``SC``/``PL`` prefix plus
a three-digit number) so reports can be diffed across runs and
suppressed or gated in CI by id.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..errors import AnalysisError

#: Rule documentation anchor base; SARIF ``helpUri`` per rule id.
HELP_URI_BASE = (
    "https://github.com/freac-cache/repro/blob/main/docs/analysis.md#"
)


def _freeze(value: Any) -> Any:
    """Recursively convert lists/dicts to tuples so payloads hash/sort."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for JSON emission (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


def fix_payload(**kwargs: Any) -> Tuple[Tuple[str, Any], ...]:
    """Build a machine-readable fix-suggestion payload for a Finding.

    Values are frozen (lists become tuples) so diagnostics stay
    hashable and sort stably; emitters thaw them back to JSON.
    """
    return tuple(sorted((key, _freeze(value)) for key, value in kwargs.items()))


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make an artifact unusable (the executor refuses
    to run it); ``WARNING`` findings flag likely performance or
    robustness problems; ``INFO`` findings are observations.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id, severity, location, message, fix hint."""

    rule: str
    severity: Severity
    message: str
    artifact: str                       # e.g. "netlist:crc32"
    location: Tuple[Tuple[str, int], ...] = ()   # (("nid", 5),) etc.
    hint: Optional[str] = None
    fix: Optional[Tuple[Tuple[str, Any], ...]] = None  # fix_payload(...)

    def loc(self, key: str, default: int = 0) -> int:
        for name, value in self.location:
            if name == key:
                return value
        return default

    def fix_dict(self) -> Dict[str, Any]:
        """The fix payload as plain JSON-able data ({} when absent)."""
        if self.fix is None:
            return {}
        return {key: _thaw(value) for key, value in self.fix}

    def sort_key(self) -> Tuple[Any, ...]:
        """Total order: severity first, then rule id, then location."""
        return (self.severity.rank, self.rule, self.artifact,
                self.location, self.message)

    def fingerprint(self) -> str:
        """Stable short content hash, independent of severity and hint.

        Used by baseline files to recognise an accepted finding across
        runs even when rule severities or wording of hints change.
        """
        ident = "\x1f".join(
            (self.rule, self.artifact,
             ",".join(f"{k}={v}" for k, v in self.location), self.message)
        )
        return hashlib.sha256(ident.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "artifact": self.artifact,
            "location": {k: v for k, v in self.location},
        }
        if self.hint is not None:
            data["hint"] = self.hint
        if self.fix is not None:
            data["fix"] = self.fix_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        fix = data.get("fix")
        return cls(
            rule=data["rule"],
            severity=Severity(data["severity"]),
            message=data["message"],
            artifact=data["artifact"],
            location=tuple(sorted(data.get("location", {}).items())),
            hint=data.get("hint"),
            fix=None if fix is None else fix_payload(**fix),
        )


@dataclass(frozen=True)
class Finding:
    """What a rule's check function yields; the runner adds identity.

    ``severity`` overrides the rule's default (e.g. a rule that is an
    error under ``strict`` analysis but a warning otherwise).
    """

    message: str
    location: Tuple[Tuple[str, int], ...] = ()
    hint: Optional[str] = None
    severity: Optional[Severity] = None
    fix: Optional[Tuple[Tuple[str, Any], ...]] = None


def at(**kwargs: int) -> Tuple[Tuple[str, int], ...]:
    """Build a location tuple: ``at(nid=3)``, ``at(cycle=2, mcc=0)``."""
    return tuple(sorted(kwargs.items()))


CheckFn = Callable[[Any, "AnalysisContext"], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered static check over one artifact kind."""

    rule_id: str
    artifact: str          # "netlist" | "schedule" | "plan" | "dataflow"
    severity: Severity     # default severity of findings
    title: str
    check: CheckFn
    description: str = ""  # one-paragraph prose; defaults to check docstring

    @property
    def help_uri(self) -> str:
        """Documentation anchor for this rule (SARIF ``helpUri``)."""
        return HELP_URI_BASE + self.rule_id.lower()

    def run(self, subject: Any, context: "AnalysisContext") -> List[Diagnostic]:
        diagnostics = []
        for finding in self.check(subject, context):
            diagnostics.append(
                Diagnostic(
                    rule=self.rule_id,
                    severity=finding.severity or self.severity,
                    message=finding.message,
                    artifact=context.artifact_name,
                    location=finding.location,
                    hint=finding.hint,
                    fix=finding.fix,
                )
            )
        return diagnostics


@dataclass
class AnalysisContext:
    """Everything a rule may consult besides the artifact itself."""

    artifact_name: str = ""
    strict: bool = False
    lut_inputs: Optional[int] = None   # netlist rules: target LUT width
    spec: Optional[Any] = None         # plan rules: BenchmarkSpec


class RuleRegistry:
    """All known rules; iteration and lookups are id-ordered.

    Ordering by rule id (not registration order) makes rule execution
    — and therefore report contents — independent of module import
    order, so text/JSON/SARIF outputs diff cleanly across runs.
    """

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> None:
        if rule.rule_id in self._rules:
            raise AnalysisError(f"duplicate rule id {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule

    def rule(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise AnalysisError(f"unknown rule id {rule_id!r}") from None

    def for_artifact(self, artifact: str) -> List[Rule]:
        return sorted(
            (r for r in self._rules.values() if r.artifact == artifact),
            key=lambda r: r.rule_id,
        )

    def __iter__(self) -> Iterator[Rule]:
        return iter(sorted(self._rules.values(), key=lambda r: r.rule_id))

    def __len__(self) -> int:
        return len(self._rules)


#: The global registry every rule module registers into on import.
registry = RuleRegistry()


def rule(
    rule_id: str,
    *,
    artifact: str,
    severity: Severity = Severity.ERROR,
    title: str,
    description: str = "",
) -> Callable[[CheckFn], CheckFn]:
    """Decorator: register ``check`` as a rule in the global registry.

    ``description`` defaults to the first paragraph of the check
    function's docstring, so existing rules pick up SARIF/doc metadata
    without restating themselves.
    """

    def decorate(check: CheckFn) -> CheckFn:
        prose = description
        if not prose and check.__doc__:
            prose = " ".join(
                check.__doc__.strip().split("\n\n")[0].split()
            )
        registry.register(
            Rule(
                rule_id=rule_id,
                artifact=artifact,
                severity=severity,
                title=title,
                check=check,
                description=prose,
            )
        )
        return check

    return decorate


@dataclass
class AnalysisReport:
    """Every finding from one analysis run over one artifact."""

    artifact: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)

    # -- severity views -------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when nothing at all was found."""
        return not self.diagnostics

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def rule_ids(self) -> List[str]:
        seen: List[str] = []
        for diagnostic in self.diagnostics:
            if diagnostic.rule not in seen:
                seen.append(diagnostic.rule)
        return seen

    def summary(self) -> Dict[str, int]:
        return {
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
        }

    # -- construction ---------------------------------------------------

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    # -- (de)serialisation ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "artifact": self.artifact,
            "summary": self.summary(),
            "rules_run": list(self.rules_run),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisReport":
        return cls(
            artifact=data["artifact"],
            diagnostics=[
                Diagnostic.from_dict(d) for d in data.get("diagnostics", ())
            ],
            rules_run=list(data.get("rules_run", ())),
        )


def run_rules(
    artifact_kind: str, subject: Any, context: AnalysisContext
) -> AnalysisReport:
    """Run every registered rule for ``artifact_kind`` over ``subject``.

    Rules execute in id order and the collected diagnostics are sorted
    by (severity, rule, location), so two runs over equal artifacts
    produce byte-identical reports.
    """
    report = AnalysisReport(artifact=context.artifact_name)
    for rule_obj in registry.for_artifact(artifact_kind):
        report.rules_run.append(rule_obj.rule_id)
        report.extend(rule_obj.run(subject, context))
    report.diagnostics.sort(key=Diagnostic.sort_key)
    return report
