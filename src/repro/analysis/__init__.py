"""Static analysis over mapping-flow artifacts (``freac lint``).

The paper's flow — RTL, technology map, DAG, level, partition, fold —
silently produces garbage from malformed inputs.  This package is the
toolchain-level verification layer in front of it: a registry of
static rules over the three artifact classes (netlists, folding
schedules, partition plans) whose findings are collected into an
:class:`AnalysisReport` of :class:`Diagnostic` objects instead of
raising at the first violation.

Layers:

* :mod:`~repro.analysis.core` — diagnostics, reports, the registry;
* :mod:`~repro.analysis.netlist_rules` / ``schedule_rules`` /
  ``plan_rules`` — the initial rule packs (NL/SC/PL ids);
* :mod:`~repro.analysis.emit` — text, JSON, and SARIF emitters;
* :mod:`~repro.analysis.preflight` — the executor/runner gate: errors
  block execution, warnings log.

``repro.folding.validate.validate_schedule`` is a strict raise-on-first
wrapper over the schedule rule pack, kept for backward compatibility.
"""

from .api import (
    analyze,
    analyze_dataflow,
    analyze_netlist,
    analyze_plan,
    analyze_schedule,
)
from .baseline import Baseline
from .certs import (
    AnalysisCertificate,
    artifact_digest,
    issue_certificate,
    rulepack_fingerprint,
    verify_certificate,
)
from .core import (
    AnalysisContext,
    AnalysisReport,
    Diagnostic,
    Finding,
    Rule,
    RuleRegistry,
    Severity,
    fix_payload,
    registry,
    rule,
)
from .dataflow import DataflowIR, build_dataflow
from .emit import to_json, to_sarif, to_text
from .preflight import preflight_netlist, preflight_schedule
from .selfcheck import check_lock_discipline

__all__ = [
    "AnalysisCertificate",
    "AnalysisContext",
    "AnalysisReport",
    "Baseline",
    "DataflowIR",
    "Diagnostic",
    "Finding",
    "Rule",
    "RuleRegistry",
    "Severity",
    "analyze",
    "analyze_dataflow",
    "analyze_netlist",
    "analyze_plan",
    "analyze_schedule",
    "artifact_digest",
    "build_dataflow",
    "check_lock_discipline",
    "fix_payload",
    "issue_certificate",
    "preflight_netlist",
    "preflight_schedule",
    "registry",
    "rule",
    "rulepack_fingerprint",
    "to_json",
    "to_sarif",
    "to_text",
    "verify_certificate",
]
