"""The def-use dataflow IR over a netlist plus its folding schedule.

PR 1's rule packs are per-field shape checks; nothing in them proves
that a folding schedule actually *computes* its netlist.  This module
builds the structure those proofs need:

* per-pass **defs** and **uses** — which op values each folding step
  produces and which earlier values it reads;
* **value liveness intervals** — from a value's defining pass to its
  last consuming pass (extended to the horizon for primary outputs and
  flip-flop next-state values);
* **scratchpad residency** — which spilled value occupies which
  scratchpad row over which passes;
* **segment-reload boundaries** — where the config stream exceeds one
  sub-array's rows and the image must be reloaded mid-invocation
  (paper Sec. IV);
* the **live cone** — ops transitively reachable from an observable
  sink (primary output, flip-flop next-state, bus store); and
* **constant values** — op values computable without any input.

The ``DF*`` rule pack (:mod:`repro.analysis.dataflow_rules`) runs over
this IR.  Construction is deliberately tolerant of corrupt schedules —
out-of-range nids, missing ops, duplicated entries — because the whole
point is to diagnose them; cycle resolution mirrors the executor's
``op_by_nid`` semantics (last entry wins) so a flagged read-before-def
is exactly the read the device would fault on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..circuits.netlist import (
    Netlist,
    NodeKind,
    WORD_MASK,
)
from ..folding.schedule import FoldingSchedule
from ..folding.scheduler import op_dependences, output_ops

#: Width in FF bits of each value-producing op class (mirrors the
#: scheduler's pressure model; BUS_STORE produces no live value).
VALUE_BITS = {
    NodeKind.LUT: 1,
    NodeKind.MAC: 32,
    NodeKind.BUS_LOAD: 32,
}

#: Default config rows per cache sub-array (paper Sec. IV).
DEFAULT_ROWS_PER_SUBARRAY = 2048


@dataclass(frozen=True)
class PassUse:
    """One read: op ``user`` consumes the value of op ``producer``.

    ``cycle`` is the folding pass at which the read happens — the
    user's scheduled pass (0 when the user is itself unscheduled).
    """

    user: int
    producer: int
    cycle: int


@dataclass(frozen=True)
class ValueLife:
    """Liveness interval of one op value across folding passes."""

    nid: int
    kind: str
    bits: int
    def_cycle: Optional[int]   # None: the producing op is unscheduled
    last_use: int              # horizon for outputs / FF next-state

    @property
    def live_span(self) -> int:
        if self.def_cycle is None:
            return 0
        return max(0, self.last_use - self.def_cycle)


@dataclass(frozen=True)
class SpillSlot:
    """Scratchpad residency of one spilled value."""

    nid: int
    row: int
    words: int
    store_cycle: int    # pass after which the value sits in the row
    reload_cycle: int   # pass before which it must still be there

    def overlaps(self, other: "SpillSlot") -> bool:
        return (self.store_cycle <= other.reload_cycle
                and other.store_cycle <= self.reload_cycle)


@dataclass
class DataflowIR:
    """Everything the ``DF*`` rules consult, built once per schedule."""

    schedule: FoldingSchedule
    passes: int
    cycle_of: Dict[int, int]
    defs: Dict[int, Tuple[int, ...]]          # pass -> op nids defined
    uses: Tuple[PassUse, ...]
    lives: Dict[int, ValueLife]
    preds: Dict[int, Set[int]]
    succs: Dict[int, Set[int]]
    live_cone: FrozenSet[int]
    dead_ops: Tuple[int, ...]
    const_values: Dict[int, int]
    spill_slots: Tuple[SpillSlot, ...]
    segment_rows: int
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def netlist(self) -> Netlist:
        return self.schedule.netlist

    @property
    def segments(self) -> int:
        """Config segments the schedule folds into (>=1)."""
        if self.passes <= 0:
            return 1
        return -(-self.passes // self.segment_rows)

    def segment_of(self, cycle: int) -> int:
        """Which config segment a 1-based pass executes in."""
        return (cycle - 1) // self.segment_rows

    def segment_boundaries(self) -> List[int]:
        """Passes after which a segment reload occurs."""
        return [
            self.segment_rows * k
            for k in range(1, self.segments)
        ]

    def live_across(self, boundary: int) -> List[ValueLife]:
        """Values defined at or before ``boundary`` and used after it."""
        return sorted(
            (
                life for life in self.lives.values()
                if life.def_cycle is not None
                and life.def_cycle <= boundary < life.last_use
            ),
            key=lambda life: life.nid,
        )


def _constant_values(netlist: Netlist) -> Dict[int, int]:
    """Statically-known node values, propagated through wiring and ops.

    Flip-flops, inputs, and bus loads stay unknown; everything whose
    fanins are all known folds.  Only op nodes are interesting to the
    rules, but wiring constness must be tracked to reach them.
    """
    known: Dict[int, int] = {}
    for nid in netlist.topo_order():
        node = netlist.nodes[nid]
        kind = node.kind
        if kind is NodeKind.CONST or kind is NodeKind.WORD_CONST:
            known[nid] = int(node.payload) & WORD_MASK  # type: ignore[call-overload]
            continue
        if kind in (NodeKind.BIT_INPUT, NodeKind.WORD_INPUT,
                    NodeKind.FLIPFLOP, NodeKind.BUS_LOAD,
                    NodeKind.BUS_STORE, NodeKind.GATE):
            continue
        if any(fanin not in known for fanin in node.fanins):
            continue
        values = [known[fanin] for fanin in node.fanins]
        if kind is NodeKind.BITSLICE:
            known[nid] = (values[0] >> node.payload) & 1  # type: ignore[operator]
        elif kind is NodeKind.PACK:
            known[nid] = sum(bit << i for i, bit in enumerate(values))
        elif kind is NodeKind.LUT:
            _, table = node.payload  # type: ignore[misc]
            index = sum(bit << i for i, bit in enumerate(values))
            known[nid] = (table >> index) & 1
        elif kind is NodeKind.MAC:
            a, b, acc = values
            known[nid] = (a * b + acc) & WORD_MASK
    return known


def build_dataflow(
    schedule: FoldingSchedule,
    *,
    rows_per_subarray: int = DEFAULT_ROWS_PER_SUBARRAY,
) -> DataflowIR:
    """Construct the def-use IR for ``schedule``.

    Never raises on a corrupt schedule: invalid nids are ignored here
    (the SC pack already flags them) and missing definitions surface
    as ``ValueLife.def_cycle is None`` for DF001 to report.
    """
    netlist = schedule.netlist
    n_nodes = len(netlist.nodes)
    preds, succs = op_dependences(netlist)
    outputs = output_ops(netlist)

    # Executor semantics: op_by_nid, last entry wins.
    cycle_of: Dict[int, int] = {}
    for op in schedule.ops:
        if 0 <= op.nid < n_nodes and netlist.nodes[op.nid].is_op:
            cycle_of[op.nid] = op.cycle

    passes = max(schedule.compute_cycles,
                 max(cycle_of.values(), default=0))

    defs_mut: Dict[int, List[int]] = {}
    for nid, cycle in cycle_of.items():
        defs_mut.setdefault(cycle, []).append(nid)
    defs = {cycle: tuple(sorted(nids)) for cycle, nids in defs_mut.items()}

    uses: List[PassUse] = []
    for nid in sorted(preds):
        user_cycle = cycle_of.get(nid)
        if user_cycle is None:
            continue  # an unscheduled op never executes, so never reads
        for producer in sorted(preds[nid]):
            uses.append(PassUse(user=nid, producer=producer,
                                cycle=user_cycle))

    lives: Dict[int, ValueLife] = {}
    for nid in sorted(preds):
        node = netlist.nodes[nid]
        bits = VALUE_BITS.get(node.kind)
        if bits is None:
            continue
        def_cycle = cycle_of.get(nid)
        use_cycles = [
            cycle_of[s] for s in succs.get(nid, ()) if s in cycle_of
        ]
        last_use = max(use_cycles, default=def_cycle or 0)
        if nid in outputs:
            last_use = max(last_use, passes)
        lives[nid] = ValueLife(
            nid=nid,
            kind=node.kind.value,
            bits=bits,
            def_cycle=def_cycle,
            last_use=last_use,
        )

    # Live cone: ops reachable backwards from an observable sink.
    sinks = set(outputs)
    sinks.update(
        nid for nid, node in enumerate(netlist.nodes)
        if node.kind is NodeKind.BUS_STORE
    )
    cone: Set[int] = set()
    stack = sorted(sinks)
    while stack:
        nid = stack.pop()
        if nid in cone:
            continue
        cone.add(nid)
        stack.extend(p for p in preds.get(nid, ()) if p not in cone)
    dead = tuple(sorted(
        nid for nid in preds
        if nid not in cone
        and netlist.nodes[nid].kind is not NodeKind.BUS_STORE
    ))

    spill_slots: List[SpillSlot] = []
    for index, nid in enumerate(schedule.spills.spilled_nids):
        life = lives.get(nid)
        if life is None or life.def_cycle is None:
            continue
        store = life.def_cycle + 1
        reload = max(store, life.last_use - 1)
        spill_slots.append(SpillSlot(
            nid=nid,
            row=schedule.spills.row_of(index),
            words=max(1, life.bits // 32),
            store_cycle=store,
            reload_cycle=reload,
        ))

    ir = DataflowIR(
        schedule=schedule,
        passes=passes,
        cycle_of=cycle_of,
        defs=defs,
        uses=tuple(uses),
        lives=lives,
        preds=preds,
        succs=succs,
        live_cone=frozenset(cone),
        dead_ops=dead,
        const_values=_constant_values(netlist),
        spill_slots=tuple(spill_slots),
        segment_rows=max(1, rows_per_subarray),
    )
    ir.stats = _compute_stats(ir)
    return ir


def _compute_stats(ir: DataflowIR) -> Dict[str, object]:
    """Depth / fanout / pressure statistics over the IR."""
    depth: Dict[int, int] = {}
    for nid in sorted(ir.preds):
        depth[nid] = 1 + max(
            (depth[p] for p in ir.preds[nid] if p in depth), default=0
        )
    peak_bits, peak_cycle = 0, 0
    if ir.lives and ir.passes > 0:
        diff = [0] * (ir.passes + 2)
        for life in ir.lives.values():
            if life.def_cycle is None or life.last_use <= life.def_cycle:
                continue
            diff[life.def_cycle + 1] += life.bits
            if life.last_use + 1 <= ir.passes:
                diff[life.last_use + 1] -= life.bits
        running = 0
        for cycle in range(1, ir.passes + 1):
            running += diff[cycle]
            if running > peak_bits:
                peak_bits, peak_cycle = running, cycle
    fanouts = [len(ir.succs[nid]) for nid in ir.succs] or [0]
    return {
        "ops": len(ir.preds),
        "passes": ir.passes,
        "critical_depth": max(depth.values(), default=0),
        "max_fanout": max(fanouts),
        "mean_fanout": round(sum(fanouts) / max(1, len(fanouts)), 3),
        "peak_live_bits": peak_bits,
        "peak_live_cycle": peak_cycle,
        "ff_capacity_bits": ir.schedule.resources.ff_bits,
        "dead_ops": len(ir.dead_ops),
        "segments": ir.segments,
        "utilization": ir.schedule.utilization(),
    }
