"""Static rules over :class:`~repro.folding.schedule.FoldingSchedule` (SCxxx).

SC001-SC010 are the legality constraints the original
``validate_schedule`` enforced (coverage, dependences through wiring,
per-cycle resource budgets, physical-slot uniqueness, LUT arity);
``repro.folding.validate`` is now a thin strict wrapper over this rule
pack, so there is exactly one implementation of each constraint.

SC011-SC014 go beyond legality: register-pressure and bus-saturation
*trends* that warn before strict mode hard-fails, schedule-horizon
consistency, and spill-cost visibility.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Set, Tuple

from ..circuits.netlist import NodeKind
from ..folding.schedule import FoldingSchedule, OpSlot
from .core import AnalysisContext, Finding, Severity, at, rule

# A schedule whose bus slots are full this fraction of its cycles is
# flagged as bus-bound (SC012): folding more MCCs into the tile will
# not speed it up, only more bus ports will.
BUS_SATURATION_THRESHOLD = 0.9


@rule("SC001", artifact="schedule", title="op scheduled more than once")
def check_duplicates(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    seen: Set[int] = set()
    for op in schedule.ops:
        if op.nid in seen:
            yield Finding(
                f"op {op.nid} is scheduled more than once",
                location=at(cycle=op.cycle, nid=op.nid),
            )
        seen.add(op.nid)


@rule("SC002", artifact="schedule", title="unscheduled op")
def check_coverage(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    op_nids = {node.nid for node in schedule.netlist.nodes if node.is_op}
    scheduled = {op.nid for op in schedule.ops}
    missing = sorted(op_nids - scheduled)
    if missing:
        yield Finding(
            f"unscheduled ops: {missing[:5]}",
            location=at(cycle=0),
            hint="every op node must be placed exactly once",
        )


@rule("SC003", artifact="schedule", title="foreign op")
def check_foreign_ops(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    """Scheduled entries must refer to op nodes of this netlist."""
    count = len(schedule.netlist.nodes)
    for op in schedule.ops:
        if not 0 <= op.nid < count:
            yield Finding(
                f"scheduled op {op.nid} does not exist in the netlist",
                location=at(cycle=op.cycle, nid=op.nid),
            )
        elif not schedule.netlist.nodes[op.nid].is_op:
            yield Finding(
                f"scheduled node {op.nid} "
                f"({schedule.netlist.nodes[op.nid].kind.value}) is wiring, "
                "not an op",
                location=at(cycle=op.cycle, nid=op.nid),
            )


@rule("SC004", artifact="schedule", title="dependence violation")
def check_dependences(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    """Every op starts strictly after each producer's value is latched."""
    netlist = schedule.netlist
    count = len(netlist.nodes)
    cycle_of: Dict[int, int] = {}
    for op in schedule.ops:
        cycle_of.setdefault(op.nid, op.cycle)
    value_cycle: Dict[int, int] = {}
    for nid in netlist.topo_order():
        node = netlist.nodes[nid]
        if node.kind is NodeKind.FLIPFLOP:
            value_cycle[nid] = 0  # stored state precedes every cycle
            continue
        producer_cycle = max(
            (value_cycle.get(f, 0) for f in node.fanins if 0 <= f < count),
            default=0,
        )
        if node.is_op:
            own = cycle_of.get(nid)
            if own is None:
                value_cycle[nid] = producer_cycle  # SC002 reports this
                continue
            if own <= producer_cycle:
                yield Finding(
                    f"op {nid} ({node.kind.value}) starts at cycle {own} "
                    f"but a producer is only latched after cycle "
                    f"{producer_cycle}",
                    location=at(cycle=own, nid=nid),
                    hint="outputs are latched; consumers must start at "
                         "least one cycle later",
                )
            value_cycle[nid] = own
        else:
            value_cycle[nid] = producer_cycle


@rule("SC005", artifact="schedule", title="cycle out of range")
def check_cycle_bounds(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    for op in schedule.ops:
        if op.cycle < 1:
            yield Finding(
                f"op {op.nid} at cycle {op.cycle}: cycles are 1-based",
                location=at(cycle=op.cycle, nid=op.nid),
            )


@rule("SC006", artifact="schedule", title="MCC index out of range")
def check_mcc_range(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    mccs = schedule.resources.mccs
    for op in schedule.ops:
        if not 0 <= op.mcc < mccs:
            yield Finding(
                f"op {op.nid} uses MCC {op.mcc} on a {mccs}-MCC tile",
                location=at(cycle=op.cycle, nid=op.nid),
            )


@rule("SC007", artifact="schedule", title="LUT unit out of range")
def check_unit_range(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    per_mcc = schedule.resources.luts_per_mcc
    for op in schedule.ops:
        if op.slot is OpSlot.LUT and not 0 <= op.unit < per_mcc:
            yield Finding(
                f"op {op.nid} uses LUT unit {op.unit} of {per_mcc}",
                location=at(cycle=op.cycle, nid=op.nid),
            )


@rule("SC008", artifact="schedule", title="physical slot collision")
def check_slot_collisions(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    placements: Dict[Tuple, int] = {}
    for op in schedule.ops:
        key = (op.cycle, op.slot, op.mcc, op.unit)
        if key in placements:
            yield Finding(
                f"ops {placements[key]} and {op.nid} share physical slot "
                f"({op.slot.value}, mcc {op.mcc}, unit {op.unit})",
                location=at(cycle=op.cycle, nid=op.nid),
            )
        else:
            placements[key] = op.nid


@rule("SC009", artifact="schedule", title="per-cycle over-subscription")
def check_resource_budgets(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    per_cycle: Dict[int, Dict[OpSlot, int]] = defaultdict(
        lambda: {slot: 0 for slot in OpSlot}
    )
    for op in schedule.ops:
        per_cycle[op.cycle][op.slot] += 1
    for cycle in sorted(per_cycle):
        for slot, used in per_cycle[cycle].items():
            budget = schedule.resources.slots(slot)
            if used > budget:
                yield Finding(
                    f"{used} {slot.value} ops exceed the tile's "
                    f"{budget} slots",
                    location=at(cycle=cycle),
                )


@rule("SC010", artifact="schedule", title="LUT arity vs mux tree")
def check_lut_width(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    limit = schedule.resources.lut_inputs
    count = len(schedule.netlist.nodes)
    for op in schedule.ops:
        if not 0 <= op.nid < count:
            continue  # SC003 reports this
        node = schedule.netlist.nodes[op.nid]
        if node.kind is NodeKind.LUT:
            width = node.payload[0]  # type: ignore[index]
            if width > limit:
                yield Finding(
                    f"{width}-input LUT exceeds the {limit}-input mux tree",
                    location=at(cycle=op.cycle, nid=op.nid),
                    hint=f"re-run technology_map with k={limit}",
                )


@rule("SC011", artifact="schedule", severity=Severity.WARNING,
      title="FF register pressure")
def check_register_pressure(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    """Post-spill live set vs the tile's flip-flop banks.

    A warning by default — the spill model keeps the schedule
    functional — but an error under strict analysis, where the FF
    banks are a hard capacity.
    """
    capacity = schedule.resources.ff_bits
    if schedule.max_live_bits > capacity:
        yield Finding(
            f"post-spill live set ({schedule.max_live_bits} bits) exceeds "
            f"the FF bank capacity ({capacity} bits)",
            location=at(cycle=0),
            severity=Severity.ERROR if context.strict else Severity.WARNING,
            hint="fold onto a larger tile (more MCCs) or let the "
                 "scheduler spill more aggressively",
        )


@rule("SC012", artifact="schedule", severity=Severity.WARNING,
      title="bus saturation")
def check_bus_saturation(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    """Sustained full bus occupancy: the tile is bus-bound."""
    cycles = schedule.compute_cycles
    if cycles < 4:
        return
    budget = schedule.resources.bus_ops_per_cycle
    per_cycle: Dict[int, int] = defaultdict(int)
    for op in schedule.ops:
        if op.slot is OpSlot.BUS:
            per_cycle[op.cycle] += 1
    saturated = sum(1 for used in per_cycle.values() if used >= budget)
    fraction = saturated / cycles
    if fraction >= BUS_SATURATION_THRESHOLD:
        yield Finding(
            f"bus slots are saturated in {saturated} of {cycles} cycles "
            f"({fraction:.0%}); the schedule is bus-bound",
            hint="more MCCs will not help; reduce operand traffic or "
                 "add scratchpad reuse",
        )


@rule("SC013", artifact="schedule", title="op beyond schedule horizon")
def check_horizon(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    """Ops placed after ``compute_cycles`` would silently never run."""
    horizon = schedule.compute_cycles
    for op in schedule.ops:
        if op.cycle > horizon:
            yield Finding(
                f"op {op.nid} at cycle {op.cycle} lies beyond the "
                f"declared {horizon}-cycle horizon",
                location=at(cycle=op.cycle, nid=op.nid),
                hint="the executor iterates compute_cycles cycles; this "
                     "op would never execute",
            )


@rule("SC014", artifact="schedule", severity=Severity.INFO,
      title="spill cost")
def check_spill_cost(
    schedule: FoldingSchedule, context: AnalysisContext
) -> Iterable[Finding]:
    spills = schedule.spills
    if spills.spilled_values:
        yield Finding(
            f"{spills.spilled_values} values spill to the scratchpad "
            f"({spills.spill_words} bus words, {spills.spill_cycles} "
            "stall cycles per invocation)",
        )
