"""Analysis entry points: run a rule pack over one artifact.

Every entry point records its wall-clock duration in the
``analysis.lint_s`` telemetry histogram (labelled by artifact kind),
so the certificate fast path in ``service/programs.py`` has a
measurable baseline to beat.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from ..errors import AnalysisError
from ..telemetry import resolve
from .core import AnalysisContext, AnalysisReport, run_rules
from .dataflow import DEFAULT_ROWS_PER_SUBARRAY, build_dataflow

# Importing the rule modules registers every rule in the global
# registry; keep these imports even though nothing is referenced.
from . import dataflow_rules as _dataflow_rules  # noqa: F401
from . import netlist_rules as _netlist_rules  # noqa: F401
from . import plan_rules as _plan_rules        # noqa: F401
from . import schedule_rules as _schedule_rules  # noqa: F401


def _observe(kind: str, start_s: float) -> None:
    tel = resolve(None)
    if tel.enabled:
        tel.histogram("analysis.lint_s", "lint pass duration").observe(
            time.perf_counter() - start_s, kind=kind
        )


def analyze_netlist(
    netlist: Any,
    *,
    lut_inputs: Optional[int] = None,
    name: Optional[str] = None,
) -> AnalysisReport:
    """Run every netlist rule; never raises on findings."""
    start = time.perf_counter()
    context = AnalysisContext(
        artifact_name=f"netlist:{name or getattr(netlist, 'name', '?')}",
        lut_inputs=lut_inputs,
    )
    report = run_rules("netlist", netlist, context)
    _observe("netlist", start)
    return report


def analyze_schedule(
    schedule: Any,
    *,
    strict: bool = False,
    name: Optional[str] = None,
) -> AnalysisReport:
    """Run every schedule rule; ``strict`` hardens pressure warnings."""
    start = time.perf_counter()
    context = AnalysisContext(
        artifact_name=(
            f"schedule:{name or getattr(schedule.netlist, 'name', '?')}"
        ),
        strict=strict,
    )
    report = run_rules("schedule", schedule, context)
    _observe("schedule", start)
    return report


def analyze_dataflow(
    schedule: Any,
    *,
    strict: bool = False,
    name: Optional[str] = None,
    rows_per_subarray: int = DEFAULT_ROWS_PER_SUBARRAY,
) -> AnalysisReport:
    """Build the def-use IR for ``schedule`` and run the DF rule pack.

    Accepts either a :class:`~repro.folding.schedule.FoldingSchedule`
    or an already-built :class:`~repro.analysis.dataflow.DataflowIR`.
    """
    start = time.perf_counter()
    if hasattr(schedule, "ops") and hasattr(schedule, "resources"):
        ir = build_dataflow(schedule, rows_per_subarray=rows_per_subarray)
    else:
        ir = schedule
    context = AnalysisContext(
        artifact_name=(
            f"dataflow:{name or getattr(ir.netlist, 'name', '?')}"
        ),
        strict=strict,
    )
    report = run_rules("dataflow", ir, context)
    _observe("dataflow", start)
    return report


def analyze_plan(
    plan: Any,
    *,
    spec: Any = None,
    name: Optional[str] = None,
) -> AnalysisReport:
    """Run every plan rule over a SlicePartition or PartitionPlan."""
    start = time.perf_counter()
    label = name
    if label is None:
        try:
            label = plan.label() if callable(plan.label) else plan.label
        except Exception:
            label = "?"
    context = AnalysisContext(artifact_name=f"plan:{label}", spec=spec)
    report = run_rules("plan", plan, context)
    _observe("plan", start)
    return report


def analyze(artifact: Any, **kwargs: Any) -> AnalysisReport:
    """Dispatch on artifact shape: netlist, schedule, plan, dataflow."""
    if hasattr(artifact, "cycle_of") and hasattr(artifact, "live_cone"):
        return analyze_dataflow(artifact, **kwargs)
    if hasattr(artifact, "ops") and hasattr(artifact, "resources"):
        return analyze_schedule(artifact, **kwargs)
    if hasattr(artifact, "nodes") and hasattr(artifact, "outputs"):
        return analyze_netlist(artifact, **kwargs)
    if hasattr(artifact, "compute_ways") or hasattr(artifact, "partition"):
        return analyze_plan(artifact, **kwargs)
    raise AnalysisError(
        f"cannot infer artifact kind of {type(artifact).__name__}"
    )
