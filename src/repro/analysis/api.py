"""Analysis entry points: run a rule pack over one artifact."""

from __future__ import annotations

from typing import Any, Optional

from ..errors import AnalysisError
from .core import AnalysisContext, AnalysisReport, run_rules

# Importing the rule modules registers every rule in the global
# registry; keep these imports even though nothing is referenced.
from . import netlist_rules as _netlist_rules  # noqa: F401
from . import plan_rules as _plan_rules        # noqa: F401
from . import schedule_rules as _schedule_rules  # noqa: F401


def analyze_netlist(
    netlist: Any,
    *,
    lut_inputs: Optional[int] = None,
    name: Optional[str] = None,
) -> AnalysisReport:
    """Run every netlist rule; never raises on findings."""
    context = AnalysisContext(
        artifact_name=f"netlist:{name or getattr(netlist, 'name', '?')}",
        lut_inputs=lut_inputs,
    )
    return run_rules("netlist", netlist, context)


def analyze_schedule(
    schedule: Any,
    *,
    strict: bool = False,
    name: Optional[str] = None,
) -> AnalysisReport:
    """Run every schedule rule; ``strict`` hardens pressure warnings."""
    context = AnalysisContext(
        artifact_name=(
            f"schedule:{name or getattr(schedule.netlist, 'name', '?')}"
        ),
        strict=strict,
    )
    return run_rules("schedule", schedule, context)


def analyze_plan(
    plan: Any,
    *,
    spec: Any = None,
    name: Optional[str] = None,
) -> AnalysisReport:
    """Run every plan rule over a SlicePartition or PartitionPlan."""
    label = name
    if label is None:
        try:
            label = plan.label() if callable(plan.label) else plan.label
        except Exception:
            label = "?"
    context = AnalysisContext(artifact_name=f"plan:{label}", spec=spec)
    return run_rules("plan", plan, context)


def analyze(artifact: Any, **kwargs: Any) -> AnalysisReport:
    """Dispatch on artifact shape: netlist, schedule, or plan."""
    if hasattr(artifact, "ops") and hasattr(artifact, "resources"):
        return analyze_schedule(artifact, **kwargs)
    if hasattr(artifact, "nodes") and hasattr(artifact, "outputs"):
        return analyze_netlist(artifact, **kwargs)
    if hasattr(artifact, "compute_ways") or hasattr(artifact, "partition"):
        return analyze_plan(artifact, **kwargs)
    raise AnalysisError(
        f"cannot infer artifact kind of {type(artifact).__name__}"
    )
