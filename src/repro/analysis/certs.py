"""Content-addressed analysis certificates.

A certificate is a small, verifiable record that a specific artifact
(identified by a content digest) was analysed by a specific rule pack
(identified by a fingerprint over every rule's identity) with a known
verdict.  The service stores one alongside each compiled program so a
warm admission can *prove* the stored verdict still applies — same
artifact bytes, same rules — and skip the full lint pass, instead of
either trusting stale reports blindly or re-linting every submit.

Verification cost is one canonical-JSON serialisation plus a sha256,
which is far cheaper than running the ~40-rule netlist + schedule +
dataflow packs; ``bench_service`` measures the delta.

A certificate goes stale when either side changes: recompiling the
program changes the digest, adding/removing/re-tiering a rule changes
the rulepack fingerprint.  Both invalidate silently into a cache miss
— the admission path then re-analyses and issues a fresh certificate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Sequence

from .core import AnalysisReport, registry

CERT_VERSION = 1

#: The artifact kinds a compiled-program certificate covers.
PROGRAM_RULEPACK = ("dataflow", "netlist", "schedule")


def rulepack_fingerprint(kinds: Sequence[str] = PROGRAM_RULEPACK) -> str:
    """Fingerprint of every registered rule for ``kinds``.

    Hashes each rule's id, artifact, default severity, and title, in
    id order — so adding, removing, or re-tiering any rule in the
    covered packs changes the fingerprint and invalidates outstanding
    certificates.
    """
    parts = []
    for kind in sorted(set(kinds)):
        for rule_obj in registry.for_artifact(kind):
            parts.append(
                f"{rule_obj.rule_id}|{rule_obj.artifact}"
                f"|{rule_obj.severity.value}|{rule_obj.title}"
            )
    blob = "\n".join(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def artifact_digest(schedule: Any) -> str:
    """Content digest of a folding schedule (netlist included).

    Canonical-JSON over :func:`~repro.folding.io.schedule_to_dict`,
    which embeds the netlist — one digest covers everything the
    netlist, schedule, and dataflow packs read.
    """
    from ..folding.io import schedule_to_dict

    blob = json.dumps(
        schedule_to_dict(schedule), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class AnalysisCertificate:
    """One verdict bound to one artifact digest and one rulepack."""

    digest: str          # artifact_digest() of the schedule
    rulepack: str        # rulepack_fingerprint() at issue time
    ok: bool             # no error-severity diagnostics
    errors: int
    warnings: int
    infos: int
    version: int = CERT_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "digest": self.digest,
            "rulepack": self.rulepack,
            "ok": self.ok,
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisCertificate":
        return cls(
            digest=data["digest"],
            rulepack=data["rulepack"],
            ok=bool(data["ok"]),
            errors=int(data["errors"]),
            warnings=int(data["warnings"]),
            infos=int(data["infos"]),
            version=int(data.get("version", 0)),
        )


def issue_certificate(
    schedule: Any,
    reports: Iterable[AnalysisReport],
    *,
    digest: str = "",
) -> AnalysisCertificate:
    """Certify ``schedule`` given the reports of a full lint pass.

    ``digest`` lets a caller that already computed the artifact digest
    avoid serialising the schedule twice.
    """
    errors = warnings = infos = 0
    ok = True
    for report in reports:
        summary = report.summary()
        errors += summary["errors"]
        warnings += summary["warnings"]
        infos += summary["infos"]
        ok = ok and report.ok
    return AnalysisCertificate(
        digest=digest or artifact_digest(schedule),
        rulepack=rulepack_fingerprint(),
        ok=ok,
        errors=errors,
        warnings=warnings,
        infos=infos,
    )


def verify_certificate(
    certificate: AnalysisCertificate,
    schedule: Any,
    *,
    digest: str = "",
) -> bool:
    """Does ``certificate`` still bind to ``schedule`` under today's rules?

    False when the certificate predates a format bump, the rule pack
    changed since issue, or the schedule bytes differ from what was
    certified.  False never means "bad program" — only "re-analyse".
    """
    if certificate.version != CERT_VERSION:
        return False
    if certificate.rulepack != rulepack_fingerprint():
        return False
    return certificate.digest == (digest or artifact_digest(schedule))
