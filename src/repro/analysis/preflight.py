"""Pre-flight gating: lint an artifact before it reaches the fabric.

The executor and the workload runner call these hooks before
configuration bits are generated or ways are locked.  Error-severity
diagnostics abort with :class:`PreflightError` (which carries the full
report — every violation, not just the first); warnings and infos are
emitted on the ``repro.analysis`` logger and execution proceeds.
"""

from __future__ import annotations

import logging
from typing import Optional

from ..errors import PreflightError
from .api import analyze_netlist, analyze_schedule
from .core import AnalysisReport, Severity

logger = logging.getLogger("repro.analysis")

_LOG_LEVEL = {
    Severity.WARNING: logging.WARNING,
    Severity.INFO: logging.INFO,
}


def _gate(report: AnalysisReport, stage: str) -> AnalysisReport:
    for diagnostic in report.diagnostics:
        if diagnostic.severity is Severity.ERROR:
            continue  # raised below, all together
        logger.log(
            _LOG_LEVEL[diagnostic.severity],
            "%s %s [%s] %s",
            diagnostic.rule,
            diagnostic.severity.value,
            diagnostic.artifact,
            diagnostic.message,
        )
    if not report.ok:
        raise PreflightError(stage, report)
    return report


def preflight_schedule(
    schedule, *, strict: bool = False, stage: str = "execute"
) -> AnalysisReport:
    """Lint a folding schedule; raise on errors, log the rest."""
    return _gate(analyze_schedule(schedule, strict=strict), stage)


def preflight_netlist(
    netlist, *, lut_inputs: Optional[int] = None, stage: str = "program"
) -> AnalysisReport:
    """Lint a netlist; raise on errors, log the rest."""
    return _gate(analyze_netlist(netlist, lut_inputs=lut_inputs), stage)
