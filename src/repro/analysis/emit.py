"""Report emitters: human text, machine JSON, and SARIF 2.1.0.

JSON output round-trips through :meth:`AnalysisReport.from_dict`;
SARIF targets code-scanning UIs (GitHub, VS Code SARIF viewers) with
rule metadata pulled from the registry and artifact locations encoded
as logical locations (``netlist:crc32#nid=5``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .core import AnalysisReport, Diagnostic, Severity, registry

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "freac-lint"

_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _location_name(diagnostic: Diagnostic) -> str:
    suffix = ",".join(f"{k}={v}" for k, v in diagnostic.location)
    return f"{diagnostic.artifact}#{suffix}" if suffix else diagnostic.artifact


def to_text(report: AnalysisReport) -> str:
    """One finding per line, sorted errors-first, with a summary tail."""
    lines: List[str] = []
    ordered = sorted(
        report.diagnostics, key=lambda d: (d.severity.rank, d.rule)
    )
    for diagnostic in ordered:
        where = _location_name(diagnostic)
        line = (
            f"{diagnostic.severity.value:>7} {diagnostic.rule} "
            f"[{where}] {diagnostic.message}"
        )
        if diagnostic.hint:
            line += f" (hint: {diagnostic.hint})"
        lines.append(line)
    summary = report.summary()
    lines.append(
        f"{report.artifact}: {summary['errors']} error(s), "
        f"{summary['warnings']} warning(s), {summary['infos']} info(s) "
        f"from {len(report.rules_run)} rules"
    )
    return "\n".join(lines)


def to_json(report: AnalysisReport, *, indent: int = 2) -> str:
    """JSON that round-trips via :meth:`AnalysisReport.from_dict`."""
    return json.dumps(report.to_dict(), indent=indent)


def to_sarif(report: AnalysisReport, *, indent: int = 2) -> str:
    """A single-run SARIF 2.1.0 log of the report."""
    rule_ids = sorted(set(report.rules_run) | set(report.rule_ids()))
    rules: List[Dict[str, Any]] = []
    for rule_id in rule_ids:
        try:
            rule_obj = registry.rule(rule_id)
            description = rule_obj.title
        except Exception:
            description = rule_id
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": description},
            }
        )
    index_of = {entry["id"]: i for i, entry in enumerate(rules)}
    results = [
        {
            "ruleId": diagnostic.rule,
            "ruleIndex": index_of[diagnostic.rule],
            "level": _SARIF_LEVEL[diagnostic.severity],
            "message": {
                "text": diagnostic.message
                + (f" Hint: {diagnostic.hint}" if diagnostic.hint else "")
            },
            "locations": [
                {
                    "logicalLocations": [
                        {"fullyQualifiedName": _location_name(diagnostic)}
                    ]
                }
            ],
        }
        for diagnostic in report.diagnostics
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://github.com/freac-cache/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=indent)
