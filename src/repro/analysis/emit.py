"""Report emitters: human text, machine JSON, and SARIF 2.1.0.

JSON output round-trips through :meth:`AnalysisReport.from_dict`;
SARIF targets code-scanning UIs (GitHub, VS Code SARIF viewers) with
rule metadata pulled from the registry and artifact locations encoded
as logical locations (``netlist:crc32#nid=5``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .core import AnalysisReport, Diagnostic, Severity, registry

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "freac-lint"

_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _location_name(diagnostic: Diagnostic) -> str:
    suffix = ",".join(f"{k}={v}" for k, v in diagnostic.location)
    return f"{diagnostic.artifact}#{suffix}" if suffix else diagnostic.artifact


def to_text(report: AnalysisReport) -> str:
    """One finding per line, sorted errors-first, with a summary tail."""
    lines: List[str] = []
    ordered = sorted(
        report.diagnostics, key=lambda d: (d.severity.rank, d.rule)
    )
    for diagnostic in ordered:
        where = _location_name(diagnostic)
        line = (
            f"{diagnostic.severity.value:>7} {diagnostic.rule} "
            f"[{where}] {diagnostic.message}"
        )
        if diagnostic.hint:
            line += f" (hint: {diagnostic.hint})"
        lines.append(line)
    summary = report.summary()
    lines.append(
        f"{report.artifact}: {summary['errors']} error(s), "
        f"{summary['warnings']} warning(s), {summary['infos']} info(s) "
        f"from {len(report.rules_run)} rules"
    )
    return "\n".join(lines)


def to_json(report: AnalysisReport, *, indent: int = 2) -> str:
    """JSON that round-trips via :meth:`AnalysisReport.from_dict`."""
    return json.dumps(report.to_dict(), indent=indent)


def _sarif_rule_entry(rule_id: str) -> Dict[str, Any]:
    """Full SARIF ``reportingDescriptor`` for one rule.

    Registered rules contribute their title, prose description,
    default severity, and help URI so code-scanning UIs render the
    finding inline; unknown ids degrade to a bare descriptor.
    """
    entry: Dict[str, Any] = {"id": rule_id}
    try:
        rule_obj = registry.rule(rule_id)
    except Exception:
        entry["shortDescription"] = {"text": rule_id}
        return entry
    entry["shortDescription"] = {"text": rule_obj.title}
    if rule_obj.description:
        entry["fullDescription"] = {"text": rule_obj.description}
    entry["defaultConfiguration"] = {
        "level": _SARIF_LEVEL[rule_obj.severity]
    }
    entry["helpUri"] = rule_obj.help_uri
    return entry


def _sarif_result(diagnostic: Diagnostic, index_of: Dict[str, int],
                  artifact_uri: str) -> Dict[str, Any]:
    location: Dict[str, Any] = {
        "logicalLocations": [
            {"fullyQualifiedName": _location_name(diagnostic)}
        ]
    }
    physical: Dict[str, Any] = {
        "artifactLocation": {"uri": artifact_uri, "index": 0},
    }
    line = diagnostic.loc("line", 0)
    if line > 0:
        physical["region"] = {"startLine": line}
    location["physicalLocation"] = physical
    result: Dict[str, Any] = {
        "ruleId": diagnostic.rule,
        "ruleIndex": index_of[diagnostic.rule],
        "level": _SARIF_LEVEL[diagnostic.severity],
        "message": {
            "text": diagnostic.message
            + (f" Hint: {diagnostic.hint}" if diagnostic.hint else "")
        },
        "locations": [location],
        "fingerprints": {"freacLint/v1": diagnostic.fingerprint()},
    }
    if diagnostic.fix is not None:
        result["properties"] = {"fix": diagnostic.fix_dict()}
    return result


def to_sarif(report: AnalysisReport, *, indent: int = 2,
             artifact_uri: str = "") -> str:
    """A single-run SARIF 2.1.0 log of the report.

    ``artifact_uri`` names the analysed artifact file (when the caller
    linted a file rather than an in-memory object) so physical
    locations resolve in code-scanning UIs; it defaults to the
    report's logical artifact name.
    """
    uri = artifact_uri or report.artifact.replace(":", "/")
    rule_ids = sorted(set(report.rules_run) | set(report.rule_ids()))
    rules = [_sarif_rule_entry(rule_id) for rule_id in rule_ids]
    index_of = {entry["id"]: i for i, entry in enumerate(rules)}
    results = [
        _sarif_result(diagnostic, index_of, uri)
        for diagnostic in report.diagnostics
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://github.com/freac-cache/repro"
                        ),
                        "rules": rules,
                    }
                },
                "artifacts": [{"location": {"uri": uri}}],
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=indent)
