"""Dataflow rules over the def-use IR (DFxxx).

Where the SC pack checks a schedule's *shape*, the DF pack checks that
it *computes*: every read happens after its definition, no scratchpad
row is clobbered while a spilled value is resident, and nothing
scheduled is provably useless.  Findings carry machine-readable
``fix`` payloads (prunable nids, foldable constants, rows freeable
earlier) so downstream tooling — ``folding/regalloc`` in particular —
can act on them without re-parsing messages.

Severity policy: DF001/DF002 are correctness errors (the device would
fault or silently produce garbage); DF003 is a warning (wasted slots,
not wrong answers); DF004-DF007 are informational optimisation leads.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List

from .core import AnalysisContext, Finding, Severity, at, fix_payload, rule
from .dataflow import DataflowIR, SpillSlot


@rule("DF001", artifact="dataflow", title="read before definition")
def check_read_before_def(
    ir: DataflowIR, context: AnalysisContext
) -> Iterable[Finding]:
    """A folding pass reads an op value that no earlier pass defines.

    Covers both dropped definitions (the producer is never scheduled)
    and inverted pass order (the producer runs at the same pass or
    later).  Either way the device faults — or worse, latches stale
    garbage — at exactly the flagged pass.
    """
    for use in ir.uses:
        def_cycle = ir.cycle_of.get(use.producer)
        if def_cycle is None:
            yield Finding(
                f"pass {use.cycle}: op {use.user} reads value "
                f"{use.producer}, which no pass defines",
                location=at(cycle=use.cycle, nid=use.user),
                hint=f"schedule op {use.producer} before pass {use.cycle}",
                fix=fix_payload(missing_def=use.producer,
                                latest_pass=use.cycle - 1),
            )
        elif def_cycle >= use.cycle:
            yield Finding(
                f"pass {use.cycle}: op {use.user} reads value "
                f"{use.producer}, defined later at pass {def_cycle}",
                location=at(cycle=use.cycle, nid=use.user),
                hint=(
                    f"move op {use.producer} before pass {use.cycle} or "
                    f"delay op {use.user}"
                ),
                fix=fix_payload(producer=use.producer,
                                def_pass=def_cycle,
                                latest_pass=use.cycle - 1),
            )


@rule("DF002", artifact="dataflow", title="scratchpad row clobbered while live")
def check_scratchpad_clobber(
    ir: DataflowIR, context: AnalysisContext
) -> Iterable[Finding]:
    """Two spilled values share a scratchpad row while both resident.

    The second store silently overwrites the first value, so its
    reload returns the wrong word.
    """
    by_row: Dict[int, List[SpillSlot]] = defaultdict(list)
    for slot in ir.spill_slots:
        by_row[slot.row].append(slot)
    for row in sorted(by_row):
        slots = sorted(by_row[row], key=lambda s: (s.store_cycle, s.nid))
        for i, first in enumerate(slots):
            for second in slots[i + 1:]:
                if first.nid != second.nid and first.overlaps(second):
                    clobber = max(first.store_cycle, second.store_cycle)
                    yield Finding(
                        f"scratchpad row {row}: value {second.nid} stored "
                        f"at pass {second.store_cycle} clobbers value "
                        f"{first.nid}, resident until pass "
                        f"{first.reload_cycle}",
                        location=at(cycle=clobber, nid=second.nid,
                                    row=row),
                        hint="assign the second spill a free row",
                        fix=fix_payload(row=row,
                                        victims=sorted(
                                            (first.nid, second.nid))),
                    )


@rule("DF003", artifact="dataflow", severity=Severity.WARNING,
      title="dead logic cone")
def check_dead_cones(
    ir: DataflowIR, context: AnalysisContext
) -> Iterable[Finding]:
    """Scheduled ops unreachable from any output, state, or store.

    They burn slots and passes without affecting anything observable;
    pruning them shrinks fold_cycles.  The fix payload lists every
    prunable nid so a tool can drop them in one sweep.
    """
    dead_scheduled = [nid for nid in ir.dead_ops if nid in ir.cycle_of]
    if not dead_scheduled:
        return
    first = dead_scheduled[0]
    yield Finding(
        f"{len(dead_scheduled)} scheduled op(s) feed no output, "
        f"flip-flop, or store (first: op {first} at pass "
        f"{ir.cycle_of[first]})",
        location=at(cycle=ir.cycle_of[first], nid=first),
        hint="prune the dead cone before scheduling",
        fix=fix_payload(prunable_nids=dead_scheduled),
    )


@rule("DF004", artifact="dataflow", severity=Severity.INFO,
      title="constant-foldable ops")
def check_constant_candidates(
    ir: DataflowIR, context: AnalysisContext
) -> Iterable[Finding]:
    """Op values computable at compile time from constants alone.

    Each could be replaced by a constant node, freeing its slot.  The
    fix payload maps nid to the folded value.
    """
    candidates = {
        nid: value for nid, value in sorted(ir.const_values.items())
        if nid in ir.preds
    }
    if not candidates:
        return
    first = next(iter(candidates))
    yield Finding(
        f"{len(candidates)} op(s) compute constants "
        f"(first: op {first} = {candidates[first]})",
        location=at(nid=first),
        hint="constant-fold before technology mapping",
        fix=fix_payload(constants=candidates),
    )


@rule("DF005", artifact="dataflow", severity=Severity.INFO,
      title="dataflow statistics")
def check_stats(
    ir: DataflowIR, context: AnalysisContext
) -> Iterable[Finding]:
    """Depth, fanout, and register-pressure profile of the schedule.

    Purely observational: critical depth bounds the best achievable
    fold_cycles, and the peak-pressure pass is where spilling starts.
    """
    stats = ir.stats
    yield Finding(
        f"depth {stats['critical_depth']}, max fanout "
        f"{stats['max_fanout']}, peak {stats['peak_live_bits']} live "
        f"bits at pass {stats['peak_live_cycle']} "
        f"(capacity {stats['ff_capacity_bits']})",
        location=at(cycle=int(stats["peak_live_cycle"])),  # type: ignore[call-overload]
        fix=fix_payload(stats=stats),
    )


@rule("DF006", artifact="dataflow", severity=Severity.INFO,
      title="values live across segment reload")
def check_segment_boundaries(
    ir: DataflowIR, context: AnalysisContext
) -> Iterable[Finding]:
    """Values that must survive a config-segment reload.

    When the schedule exceeds one sub-array's rows the image reloads
    mid-invocation (paper Sec. IV); every value live across that
    boundary must sit in flip-flops during the reload, so a crowded
    boundary is a resize candidate.
    """
    for boundary in ir.segment_boundaries():
        live = ir.live_across(boundary)
        if not live:
            continue
        bits = sum(life.bits for life in live)
        yield Finding(
            f"segment reload after pass {boundary}: {len(live)} "
            f"value(s) / {bits} bits stay live across it",
            location=at(cycle=boundary),
            hint="values crossing a reload must be FF-resident",
            fix=fix_payload(boundary=boundary,
                            nids=[life.nid for life in live]),
        )


@rule("DF007", artifact="dataflow", severity=Severity.INFO,
      title="scratchpad rows freeable earlier")
def check_rows_freeable(
    ir: DataflowIR, context: AnalysisContext
) -> Iterable[Finding]:
    """Spill rows whose value dies before the schedule ends.

    After the reload pass the row is garbage; ``folding/regalloc`` can
    reuse it for a later spill instead of widening the scratchpad.
    The fix payload maps row to the pass after which it is free.
    """
    freeable = {
        slot.row: slot.reload_cycle
        for slot in sorted(ir.spill_slots, key=lambda s: s.row)
        if slot.reload_cycle < ir.passes
    }
    if not freeable:
        return
    yield Finding(
        f"{len(freeable)} scratchpad row(s) hold dead values before "
        "the schedule ends",
        location=at(cycle=min(freeable.values())),
        hint="rows are reusable for later spills (regalloc lead)",
        fix=fix_payload(free_after=freeable),
    )
