"""Lock-discipline self-lint over the repo's own Python source.

The service layer documents a strict discipline — "service lock
first, component locks only underneath" — but nothing enforced it;
a field mutated outside ``self._lock`` is a data race that no unit
test reliably catches.  This module turns the discipline into a
machine-checked contract:

* a class declares its lock-guarded fields in a plain class attribute::

      _GUARDED_BY_LOCK = ("_heap", "_sequence")

* the checker parses the file with :mod:`ast` and flags every
  mutation of a guarded field (assignment, augmented assignment,
  deletion, subscript store, or a mutating method call like
  ``.append``/``.pop``) that is not lexically inside a
  ``with self._lock:`` block (``_cv`` and ``_job_cv`` — the
  service's Conditions over the same lock — also count).

Escapes are deliberate and visible: ``__init__`` is exempt (no other
thread can hold a reference yet), and a method whose docstring says
the *caller* "must hold" the lock is trusted — the convention the
service layer already uses for its ``_locked`` helpers.

Findings reuse the analysis report/emitter stack (rule ids LK001 and
LK002), so ``freac selfcheck --format sarif`` uploads straight to
code scanning.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .core import (
    AnalysisContext,
    AnalysisReport,
    Diagnostic,
    Finding,
    Severity,
    at,
    rule,
)

#: Attribute names that count as "the lock" when entered via ``with``.
LOCK_ATTRS = frozenset({"_lock", "_cv", "_job_cv"})

#: Method calls on a guarded field that mutate it in place.
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popitem", "popleft", "remove",
    "setdefault", "sort", "update",
})

#: Docstring phrase that waives the check for a method (the caller
#: is documented to hold the lock already).
CALLER_HOLDS_PHRASE = "must hold"


# The LK rules are registered for SARIF/doc metadata; the checker
# builds their diagnostics directly (there is no per-file run_rules
# pass), so the check functions never fire.
@rule("LK001", artifact="python", title="guarded field mutated outside lock")
def _lk001(subject: Any, context: AnalysisContext) -> Iterable[Finding]:
    """A field listed in ``_GUARDED_BY_LOCK`` is mutated on a code path
    that does not hold the declared lock, which is a data race under
    the service's threading model."""
    return ()


@rule("LK002", artifact="python", severity=Severity.WARNING,
      title="guarded field never mutated")
def _lk002(subject: Any, context: AnalysisContext) -> Iterable[Finding]:
    """``_GUARDED_BY_LOCK`` names a field no method of the class ever
    mutates — usually a typo that silently disables the guard."""
    return ()


def _guarded_fields(cls: ast.ClassDef) -> Tuple[str, ...]:
    """The ``_GUARDED_BY_LOCK`` declaration of a class, if any."""
    for stmt in cls.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if (isinstance(target, ast.Name)
                    and target.id == "_GUARDED_BY_LOCK"
                    and isinstance(value, (ast.Tuple, ast.List))):
                names = []
                for element in value.elts:
                    if (isinstance(element, ast.Constant)
                            and isinstance(element.value, str)):
                        names.append(element.value)
                return tuple(names)
    return ()


def _self_attr_root(expr: ast.expr) -> Optional[str]:
    """The ``self.<field>`` a store/call target is rooted at, if any.

    ``self.jobs[k] = v`` and ``self._heap.append(x)`` both root at the
    field; plain local variables root at nothing.
    """
    node = expr
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return node.attr
        node = node.value
    return None


def _acquires_lock(stmt: Union[ast.With, ast.AsyncWith]) -> bool:
    for item in stmt.items:
        expr = item.context_expr
        # `with self._lock:` or `with self._cv:` (Condition wraps the
        # same lock).  A bare `.acquire()` call is not recognised —
        # the discipline is with-statements only.
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in LOCK_ATTRS):
            return True
    return False


class _Mutation:
    __slots__ = ("field", "line", "how")

    def __init__(self, field: str, line: int, how: str) -> None:
        self.field = field
        self.line = line
        self.how = how


# Statements with no nested statement bodies: their whole subtree is
# expressions, so a single ast.walk finds every mutator call exactly
# once.  Compound statements get only their header expressions scanned
# here; their bodies are walked (with lock tracking) by _walk_body.
_SIMPLE_STMTS = (
    ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Return,
    ast.Delete, ast.Raise, ast.Assert,
)


def _header_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Expressions a compound statement evaluates before its bodies."""
    for _, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for element in value:
                if isinstance(element, ast.expr):
                    yield element
                elif isinstance(element, ast.withitem):
                    yield element.context_expr


def _stmt_mutations(stmt: ast.stmt, guarded: frozenset) -> Iterator[_Mutation]:
    """Guarded-field mutations in one statement's own expressions."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if not (isinstance(stmt, ast.AnnAssign) and stmt.value is None):
            targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        field = _self_attr_root(target)
        if field in guarded:
            yield _Mutation(field, target.lineno, "assigned")

    if isinstance(stmt, _SIMPLE_STMTS):
        roots: Iterable[ast.AST] = (stmt,)
    else:
        roots = tuple(_header_exprs(stmt))
    for root in roots:
        for node in ast.walk(root):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS):
                field = _self_attr_root(node.func.value)
                if field in guarded:
                    yield _Mutation(
                        field, node.lineno, f".{node.func.attr}() called"
                    )


def _walk_body(
    body: Sequence[ast.stmt], guarded: frozenset, held: bool
) -> Iterator[_Mutation]:
    """Yield unlocked mutations, tracking ``with self._lock`` blocks."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # A nested def runs later, under unknown locking; the
            # checker neither trusts nor blames it.
            continue
        if not held:
            yield from _stmt_mutations(stmt, guarded)
        inner_held = held or (
            isinstance(stmt, (ast.With, ast.AsyncWith))
            and _acquires_lock(stmt)
        )
        for inner in ("body", "orelse", "finalbody"):
            yield from _walk_body(
                getattr(stmt, inner, ()), guarded, inner_held
            )
        for handler in getattr(stmt, "handlers", ()):
            yield from _walk_body(handler.body, guarded, inner_held)


def _all_mutations(
    body: Sequence[ast.stmt], guarded: frozenset
) -> Iterator[_Mutation]:
    """Every mutation, locked or not (the LK002 census)."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield from _stmt_mutations(stmt, guarded)
        for inner in ("body", "orelse", "finalbody"):
            yield from _all_mutations(getattr(stmt, inner, ()), guarded)
        for handler in getattr(stmt, "handlers", ()):
            yield from _all_mutations(handler.body, guarded)


def _check_class(
    cls: ast.ClassDef, artifact: str
) -> Iterator[Diagnostic]:
    guarded = frozenset(_guarded_fields(cls))
    if not guarded:
        return
    mutated: set = set()
    for stmt in cls.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        mutated.update(
            m.field for m in _all_mutations(stmt.body, guarded)
        )
        docstring = (ast.get_docstring(stmt) or "").lower()
        if stmt.name == "__init__" or CALLER_HOLDS_PHRASE in docstring:
            continue
        for mutation in _walk_body(stmt.body, guarded, held=False):
            yield Diagnostic(
                rule="LK001",
                severity=Severity.ERROR,
                message=(
                    f"{cls.name}.{stmt.name}: guarded field "
                    f"self.{mutation.field} {mutation.how} outside "
                    "self._lock"
                ),
                artifact=artifact,
                location=at(line=mutation.line),
                hint=(
                    "wrap the mutation in `with self._lock:` or "
                    "document that the caller must hold it"
                ),
            )
    for field in sorted(guarded - mutated):
        yield Diagnostic(
            rule="LK002",
            severity=Severity.WARNING,
            message=(
                f"{cls.name}: _GUARDED_BY_LOCK names {field!r} but no "
                "method mutates it (typo?)"
            ),
            artifact=artifact,
            location=at(line=cls.lineno),
        )


def check_file(path: Union[Path, str],
               artifact: Optional[str] = None) -> List[Diagnostic]:
    """Lock-discipline diagnostics for one Python file."""
    path = Path(path)
    label = artifact if artifact is not None else str(path)
    tree = ast.parse(path.read_text(), filename=str(path))
    diagnostics: List[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            diagnostics.extend(_check_class(node, label))
    return diagnostics


def check_lock_discipline(
    paths: Iterable[Union[Path, str]],
    *,
    root: Optional[Path] = None,
) -> AnalysisReport:
    """Run the checker over files and/or directories.

    Directories are walked recursively for ``*.py``.  Artifact names
    are made relative to ``root`` when given, so reports are stable
    across checkouts.
    """
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    report = AnalysisReport(
        artifact="selfcheck", rules_run=["LK001", "LK002"]
    )
    for path in files:
        label = str(path)
        if root is not None:
            try:
                label = path.resolve().relative_to(
                    root.resolve()
                ).as_posix()
            except ValueError:
                label = path.as_posix()
        report.extend(check_file(path, artifact=label))
    report.diagnostics.sort(key=Diagnostic.sort_key)
    return report
