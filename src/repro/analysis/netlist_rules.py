"""Static rules over :class:`~repro.circuits.netlist.Netlist` (NLxxx).

``Netlist.add`` enforces arity and topological order at construction
time, so a netlist built through the public API cannot trip most of
these rules.  They exist for everything that bypasses ``add``:
deserialised JSON, hand-mutated node lists (the class is only
immutable *by convention*), and netlists produced by external
frontends.  The lint pass is defence in depth before configuration
bits are generated from a bad IR.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from ..circuits.netlist import GateOp, Netlist, Node, NodeKind
from .core import AnalysisContext, Finding, Severity, at, rule

# Default mux-tree width when the caller does not say which tile the
# netlist targets (paper Sec. III-A: the sub-array port fits 5-LUTs).
DEFAULT_LUT_INPUTS = 5


def _valid_fanins(netlist: Netlist, node: Node) -> List[int]:
    return [f for f in node.fanins if 0 <= f < len(netlist.nodes)]


@rule("NL001", artifact="netlist", title="combinational cycle")
def check_combinational_cycles(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    """A cycle through non-flip-flop nodes can never be evaluated.

    Flip-flop fanins are sequential (stored state breaks the loop), so
    only edges into non-FF nodes count.
    """
    count = len(netlist.nodes)
    WHITE, GREY, BLACK = 0, 1, 2
    colour = [WHITE] * count
    reported: Set[int] = set()
    for root in range(count):
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[int, bool]] = [(root, False)]
        path: List[int] = []
        while stack:
            nid, leaving = stack.pop()
            if leaving:
                colour[nid] = BLACK
                path.pop()
                continue
            if colour[nid] == BLACK:
                continue
            if colour[nid] == GREY:
                continue
            colour[nid] = GREY
            path.append(nid)
            stack.append((nid, True))
            node = netlist.nodes[nid]
            if node.kind is NodeKind.FLIPFLOP:
                continue  # its fanin edge is sequential, not combinational
            for fanin in _valid_fanins(netlist, node):
                if colour[fanin] == GREY:
                    if fanin not in reported:
                        reported.add(fanin)
                        cycle = path[path.index(fanin):] + [fanin]
                        yield Finding(
                            f"combinational cycle through nodes "
                            f"{' -> '.join(map(str, cycle))}",
                            location=at(nid=fanin),
                            hint="break the loop with a flip-flop "
                                 "(bind_flipflop) or remove the back edge",
                        )
                elif colour[fanin] == WHITE:
                    stack.append((fanin, False))


@rule("NL002", artifact="netlist", title="floating or undriven fanin")
def check_dangling_fanins(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    """Every fanin must reference an existing, already-built node."""
    count = len(netlist.nodes)
    for node in netlist.nodes:
        for fanin in node.fanins:
            if not 0 <= fanin < count:
                yield Finding(
                    f"node {node.nid} ({node.kind.value}) reads fanin "
                    f"{fanin}, which does not exist",
                    location=at(nid=node.nid),
                    hint="netlists are append-only; fanins must point at "
                         "earlier nodes",
                )
            elif fanin >= node.nid and node.kind is not NodeKind.FLIPFLOP:
                yield Finding(
                    f"node {node.nid} ({node.kind.value}) reads fanin "
                    f"{fanin}, which is not built before it",
                    location=at(nid=node.nid),
                    hint="only flip-flops may be driven by later nodes",
                )


@rule("NL003", artifact="netlist", title="unbound flip-flop")
def check_unbound_flipflops(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    """A flip-flop without a next-state driver never changes state."""
    for node in netlist.flipflops():
        if not node.fanins:
            yield Finding(
                f"flip-flop {node.nid} has no next-state driver",
                location=at(nid=node.nid),
                hint="call bind_flipflop before folding the netlist",
            )


@rule("NL004", artifact="netlist", title="uninitialised flip-flop state")
def check_flipflop_init(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    """Reading a flip-flop whose initial value is not 0/1 is undefined."""
    for node in netlist.flipflops():
        if node.payload not in (0, 1):
            yield Finding(
                f"flip-flop {node.nid} has initial value "
                f"{node.payload!r}; the first read is undefined",
                location=at(nid=node.nid),
                hint="flip-flop payloads must be 0 or 1",
            )


@rule("NL005", artifact="netlist", severity=Severity.WARNING,
      title="dead logic")
def check_dead_logic(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    """Op nodes unreachable from any output, store, or FF driver.

    Dead ops still consume folding slots and configuration rows — the
    scheduler places them last but does not delete them.
    """
    count = len(netlist.nodes)
    roots: Set[int] = set(netlist.outputs.values())
    for node in netlist.nodes:
        if node.kind is NodeKind.BUS_STORE:
            roots.add(node.nid)  # stores are side effects
        elif node.kind is NodeKind.FLIPFLOP and node.fanins:
            roots.add(node.fanins[0])
    live: Set[int] = set()
    stack = [nid for nid in roots if 0 <= nid < count]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        node = netlist.nodes[nid]
        fanins = node.fanins
        if node.kind is NodeKind.FLIPFLOP:
            fanins = ()  # state is live, but its driver is a root already
        for fanin in fanins:
            if 0 <= fanin < count and fanin not in live:
                stack.append(fanin)
    for node in netlist.nodes:
        if node.is_op and node.nid not in live:
            yield Finding(
                f"op node {node.nid} ({node.kind.value}) is unreachable "
                "from every output, bus store, and flip-flop driver",
                location=at(nid=node.nid),
                hint="dead ops waste folding slots; remove them or wire "
                     "them to an output",
            )


@rule("NL006", artifact="netlist", severity=Severity.INFO,
      title="unused input")
def check_unused_inputs(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    # Netlist.fanout_counts() assumes a well-formed netlist; count
    # defensively here since this rule runs on broken ones too.
    count = len(netlist.nodes)
    fanout = [0] * count
    for node in netlist.nodes:
        for fanin in _valid_fanins(netlist, node):
            fanout[fanin] += 1
    for nid in netlist.outputs.values():
        if 0 <= nid < count:
            fanout[nid] += 1
    for node in netlist.nodes:
        if node.kind in (NodeKind.BIT_INPUT, NodeKind.WORD_INPUT):
            if fanout[node.nid] == 0:
                yield Finding(
                    f"input {node.payload!r} (node {node.nid}) drives "
                    "nothing",
                    location=at(nid=node.nid),
                )


@rule("NL007", artifact="netlist", title="LUT arity")
def check_lut_arity(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    """LUT payloads must be well-formed and fit the target mux tree."""
    limit = context.lut_inputs or DEFAULT_LUT_INPUTS
    for node in netlist.nodes:
        if node.kind is not NodeKind.LUT:
            continue
        payload = node.payload
        if (
            not isinstance(payload, tuple)
            or len(payload) != 2
            or payload[0] != len(node.fanins)
        ):
            yield Finding(
                f"LUT {node.nid} payload {payload!r} does not match its "
                f"{len(node.fanins)} fanins",
                location=at(nid=node.nid),
            )
            continue
        k, table = payload
        if not isinstance(table, int) or not 0 <= table < (1 << (1 << k)):
            yield Finding(
                f"LUT {node.nid} truth table does not fit {k} inputs",
                location=at(nid=node.nid),
            )
        if k > limit:
            yield Finding(
                f"{k}-input LUT {node.nid} exceeds the {limit}-input "
                "mux tree",
                location=at(nid=node.nid),
                hint=f"re-run technology_map with k={limit}",
            )


@rule("NL008", artifact="netlist", title="gate arity")
def check_gate_arity(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    for node in netlist.nodes:
        if node.kind is not NodeKind.GATE:
            continue
        if not isinstance(node.payload, GateOp):
            yield Finding(
                f"gate {node.nid} payload {node.payload!r} is not a GateOp",
                location=at(nid=node.nid),
            )
        elif len(node.fanins) != node.payload.arity:
            yield Finding(
                f"{node.payload.value} gate {node.nid} has "
                f"{len(node.fanins)} fanins, needs {node.payload.arity}",
                location=at(nid=node.nid),
            )


@rule("NL009", artifact="netlist", severity=Severity.WARNING,
      title="unmapped gates")
def check_unmapped_gates(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    """Raw gates cannot be folded; the scheduler rejects them outright."""
    gates = sum(1 for n in netlist.nodes if n.kind is NodeKind.GATE)
    if gates:
        yield Finding(
            f"netlist contains {gates} raw gate(s); folding requires a "
            "technology-mapped netlist",
            hint="run technology_map before scheduling",
        )


@rule("NL010", artifact="netlist", title="bus stream indices")
def check_bus_streams(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    """Per-stream sequence indices must be 0..n-1 without gaps."""
    streams: Dict[Tuple[str, str], List[int]] = {}
    for node in netlist.nodes:
        if node.kind in (NodeKind.BUS_LOAD, NodeKind.BUS_STORE):
            payload = node.payload
            if not isinstance(payload, tuple) or len(payload) != 2:
                yield Finding(
                    f"{node.kind.value} {node.nid} payload {payload!r} is "
                    "not (stream, index)",
                    location=at(nid=node.nid),
                )
                continue
            stream, index = payload
            streams.setdefault((node.kind.value, stream), []).append(index)
    for (kind, stream), indices in streams.items():
        if sorted(indices) != list(range(len(indices))):
            yield Finding(
                f"{kind} stream {stream!r} has non-contiguous sequence "
                f"indices {sorted(indices)[:5]}",
                hint="bus streams index 0..n-1; rebuild through "
                     "CircuitBuilder.bus_load/bus_store",
            )


@rule("NL011", artifact="netlist", title="dangling output")
def check_outputs(
    netlist: Netlist, context: AnalysisContext
) -> Iterable[Finding]:
    count = len(netlist.nodes)
    for name, nid in netlist.outputs.items():
        if not 0 <= nid < count:
            yield Finding(
                f"output {name!r} points at node {nid}, which does not "
                "exist",
                location=at(nid=nid),
            )
