"""Baseline suppression files for ``freac lint``.

A baseline is the set of findings a project has explicitly accepted:
``freac lint --write-baseline accepted.json`` records today's report,
and later runs with ``--baseline accepted.json`` subtract it — so CI
can gate on *new* findings only while legacy ones are paid down
incrementally.

Findings are matched by :meth:`Diagnostic.fingerprint` (rule id +
artifact + location + message), which survives severity re-tiering
and hint rewording.  Alongside each fingerprint the file stores the
rule and message for human review of what exactly was accepted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Union

from ..errors import AnalysisError
from .core import AnalysisReport

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """Accepted finding fingerprints, with context for human review."""

    entries: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def from_report(cls, report: AnalysisReport) -> "Baseline":
        entries = {
            d.fingerprint(): {"rule": d.rule, "message": d.message}
            for d in report.diagnostics
        }
        return cls(entries=entries)

    def apply(self, report: AnalysisReport) -> AnalysisReport:
        """A copy of ``report`` without the accepted findings."""
        kept = [
            d for d in report.diagnostics
            if d.fingerprint() not in self.entries
        ]
        return AnalysisReport(
            artifact=report.artifact,
            diagnostics=kept,
            rules_run=list(report.rules_run),
        )

    def suppressed(self, report: AnalysisReport) -> int:
        return sum(
            1 for d in report.diagnostics
            if d.fingerprint() in self.entries
        )

    # -- persistence ----------------------------------------------------

    def save(self, path: Union[Path, str]) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": {
                fingerprint: dict(context)
                for fingerprint, context in sorted(self.entries.items())
            },
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def load(cls, path: Union[Path, str]) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text())
        except FileNotFoundError:
            raise AnalysisError(f"baseline file {path} does not exist")
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline file {path} is not JSON: {exc}")
        if payload.get("version") != BASELINE_VERSION:
            raise AnalysisError(
                f"baseline file {path} has unsupported version "
                f"{payload.get('version')!r}"
            )
        return cls(entries={
            str(fingerprint): {
                "rule": str(context.get("rule", "")),
                "message": str(context.get("message", "")),
            }
            for fingerprint, context in payload.get("findings", {}).items()
        })
