"""Static rules over partition plans (PLxxx).

The subject is either a :class:`~repro.freac.compute_slice.SlicePartition`
or a :class:`~repro.freac.planner.PartitionPlan` (a partition plus a
tile assignment).  Rules access both structurally — ``partition``,
``tile_mccs``, ``tiles_per_slice`` — so this module imports nothing
from ``repro.freac`` and stays cycle-free in the import graph.

``SlicePartition.__post_init__`` rejects the grossest mistakes at
construction, but plans arrive from JSON, from arithmetic over way
counts, and from planners under development; the lint pass checks the
combined compute/scratchpad/cache story before ways are locked.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from .core import AnalysisContext, Finding, Severity, rule

# Paper constants for the default slice: 64 KB ways, four data arrays
# (hence four MCCs) per locked way pair.
WAY_BYTES = 64 * 1024
DATA_ARRAYS_PER_WAY = 4


def _partition(subject: Any) -> Any:
    return getattr(subject, "partition", subject)


def _tiles(subject: Any) -> Optional[int]:
    return getattr(subject, "tiles_per_slice", None)


def _tile_mccs(subject: Any) -> Optional[int]:
    return getattr(subject, "tile_mccs", None)


def _partition_mccs(partition: Any) -> int:
    return (partition.compute_ways // 2) * DATA_ARRAYS_PER_WAY


@rule("PL001", artifact="plan", title="way budget exceeded")
def check_way_budget(subject: Any, context: AnalysisContext) -> Iterable[Finding]:
    """Compute + scratchpad ways must fit the slice; no overlaps."""
    partition = _partition(subject)
    if partition.compute_ways < 0 or partition.scratchpad_ways < 0:
        yield Finding(
            f"negative way counts: {partition.compute_ways} compute, "
            f"{partition.scratchpad_ways} scratchpad",
        )
        return
    claimed = partition.compute_ways + partition.scratchpad_ways
    if claimed > partition.total_ways:
        yield Finding(
            f"{partition.compute_ways} compute + "
            f"{partition.scratchpad_ways} scratchpad ways collide on the "
            f"{partition.total_ways}-way slice",
            hint="compute, scratchpad, and cache ways are disjoint sets; "
                 "shrink one allocation",
        )


@rule("PL002", artifact="plan", title="unpaired compute ways")
def check_way_pairing(subject: Any, context: AnalysisContext) -> Iterable[Finding]:
    """MCCs form from adjacent way pairs (paper Sec. III-C)."""
    partition = _partition(subject)
    if partition.compute_ways % 2:
        yield Finding(
            f"{partition.compute_ways} compute ways cannot be paired",
            hint="compute ways are consumed two at a time",
        )


@rule("PL003", artifact="plan", title="MCC over-subscription")
def check_mcc_budget(subject: Any, context: AnalysisContext) -> Iterable[Finding]:
    """Tile demand must fit the MCCs the compute ways provide."""
    tile_mccs, tiles = _tile_mccs(subject), _tiles(subject)
    if tile_mccs is None or tiles is None:
        return
    partition = _partition(subject)
    budget = _partition_mccs(partition)
    demand = tile_mccs * tiles
    if tile_mccs < 1:
        yield Finding(f"tile size {tile_mccs} MCCs is not positive")
    elif demand > budget:
        yield Finding(
            f"{tiles} tiles of {tile_mccs} MCCs demand {demand} MCCs but "
            f"{partition.compute_ways} compute ways provide {budget}",
            hint="lock more compute ways or shrink the tiles",
        )


@rule("PL004", artifact="plan", title="no operand storage")
def check_scratchpad_present(
    subject: Any, context: AnalysisContext
) -> Iterable[Finding]:
    """Accelerators stream operands from locked scratchpad ways."""
    partition = _partition(subject)
    if partition.compute_ways > 0 and partition.scratchpad_ways == 0:
        yield Finding(
            "plan locks compute ways but no scratchpad ways",
            hint="accelerators need operand storage; reserve at least "
                 "one scratchpad way",
        )


@rule("PL005", artifact="plan", severity=Severity.WARNING,
      title="no cache retained")
def check_cache_floor(subject: Any, context: AnalysisContext) -> Iterable[Finding]:
    """Consuming every way starves co-running applications (Fig. 15)."""
    partition = _partition(subject)
    cache_ways = (
        partition.total_ways - partition.compute_ways - partition.scratchpad_ways
    )
    if cache_ways == 0 and partition.compute_ways > 0:
        yield Finding(
            "the plan leaves zero ways as cache",
            hint="co-running applications lose the whole LLC; keep a "
                 "cache floor (e.g. --cache-ways 2)",
        )


@rule("PL006", artifact="plan", title="zero tiles")
def check_tiles_formed(subject: Any, context: AnalysisContext) -> Iterable[Finding]:
    tiles = _tiles(subject)
    if tiles is not None and tiles < 1:
        yield Finding(
            f"the plan forms {tiles} accelerator tiles",
            hint="the tile size exceeds the partition's MCC budget",
        )


@rule("PL007", artifact="plan", title="working set overflow")
def check_working_set(subject: Any, context: AnalysisContext) -> Iterable[Finding]:
    """Each tile's working set must fit its scratchpad share."""
    spec = context.spec
    tiles = _tiles(subject)
    if spec is None or not tiles or tiles < 1:
        return
    partition = _partition(subject)
    working_set = getattr(spec, "tile_working_set_bytes", 0)
    capacity = partition.scratchpad_ways * WAY_BYTES
    demand = working_set * tiles
    if demand > capacity:
        yield Finding(
            f"{tiles} tiles of {working_set}-byte working sets need "
            f"{demand} scratchpad bytes; "
            f"{partition.scratchpad_ways} ways hold {capacity}",
            hint="fewer tiles or more scratchpad ways",
        )
