"""A tiny structural HDL for building benchmark netlists.

``CircuitBuilder`` provides gate-level bit-vector arithmetic (ripple
adders, comparators, muxes) and word-level MAC/bus operations, so each
benchmark processing element (paper Sec. V) can be written in a few
dozen lines and synthesised by the technology mapper.

Conventions: bit vectors are Python lists of bit-node ids, LSB first;
``Word`` wraps a 32-bit word-level value and converts lazily between
the word node and its bit slices (the conversions are wiring and cost
nothing downstream).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CircuitError
from .netlist import GateOp, Netlist, NodeKind, WORD_BITS, WORD_MASK


class Word:
    """A 32-bit value that may exist as a word node, bit slices, or both."""

    def __init__(self, builder: "CircuitBuilder",
                 word_nid: Optional[int] = None,
                 bits: Optional[List[int]] = None) -> None:
        if word_nid is None and bits is None:
            raise CircuitError("a Word needs a word node or bits")
        self._builder = builder
        self._word_nid = word_nid
        self._bits = list(bits) if bits is not None else None

    @property
    def nid(self) -> int:
        """The word-level node id (PACKing the bits if needed)."""
        if self._word_nid is None:
            assert self._bits is not None
            self._word_nid = self._builder.netlist.add(
                NodeKind.PACK, self._bits, None
            )
        return self._word_nid

    @property
    def bits(self) -> List[int]:
        """The 32 bit-node ids, LSB first (BITSLICEd if needed)."""
        if self._bits is None:
            assert self._word_nid is not None
            netlist = self._builder.netlist
            self._bits = [
                netlist.add(NodeKind.BITSLICE, [self._word_nid], index)
                for index in range(WORD_BITS)
            ]
        return list(self._bits)


class CircuitBuilder:
    """Builds a :class:`Netlist` through composable operations."""

    def __init__(self, name: str = "circuit") -> None:
        self.netlist = Netlist(name)
        self._load_counters: Dict[str, int] = {}
        self._store_counters: Dict[str, int] = {}
        self._const_cache: Dict[int, int] = {}
        self._word_const_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def bit_input(self, name: str) -> int:
        return self.netlist.add(NodeKind.BIT_INPUT, (), name)

    def word_input(self, name: str) -> Word:
        nid = self.netlist.add(NodeKind.WORD_INPUT, (), name)
        return Word(self, word_nid=nid)

    def bus_load(self, stream: str) -> Word:
        """One 32-bit load on the operand bus from ``stream``."""
        index = self._load_counters.get(stream, 0)
        self._load_counters[stream] = index + 1
        nid = self.netlist.add(NodeKind.BUS_LOAD, (), (stream, index))
        return Word(self, word_nid=nid)

    def bus_store(self, stream: str, value: Word) -> int:
        """One 32-bit store on the operand bus to ``stream``."""
        index = self._store_counters.get(stream, 0)
        self._store_counters[stream] = index + 1
        return self.netlist.add(NodeKind.BUS_STORE, (value.nid,), (stream, index))

    def output_bit(self, name: str, bit: int) -> None:
        self.netlist.set_output(name, bit)

    def output_word(self, name: str, word: Word) -> None:
        self.netlist.set_output(name, word.nid)

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------

    def const_bit(self, value: int) -> int:
        value = 1 if value else 0
        if value not in self._const_cache:
            self._const_cache[value] = self.netlist.add(NodeKind.CONST, (), value)
        return self._const_cache[value]

    def const_word(self, value: int) -> Word:
        value &= WORD_MASK
        if value not in self._word_const_cache:
            self._word_const_cache[value] = self.netlist.add(
                NodeKind.WORD_CONST, (), value
            )
        return Word(self, word_nid=self._word_const_cache[value])

    def const_bits(self, value: int, width: int) -> List[int]:
        return [self.const_bit((value >> i) & 1) for i in range(width)]

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------

    def gate(self, op: GateOp, *fanins: int) -> int:
        return self.netlist.add(NodeKind.GATE, fanins, op)

    def and_(self, a: int, b: int) -> int:
        return self.gate(GateOp.AND, a, b)

    def or_(self, a: int, b: int) -> int:
        return self.gate(GateOp.OR, a, b)

    def xor_(self, a: int, b: int) -> int:
        return self.gate(GateOp.XOR, a, b)

    def not_(self, a: int) -> int:
        return self.gate(GateOp.NOT, a)

    def mux(self, sel: int, a: int, b: int) -> int:
        """``a`` when ``sel`` is 0, else ``b``."""
        return self.gate(GateOp.MUX, sel, a, b)

    def raw_lut(self, fanins: Sequence[int], table: int) -> int:
        """An arbitrary-arity LUT; wide ones are decomposed by techmap."""
        return self.netlist.add(NodeKind.LUT, fanins, (len(fanins), table))

    # ------------------------------------------------------------------
    # Sequential state
    # ------------------------------------------------------------------

    def flipflop(self, init: int = 0) -> int:
        """A 1-bit state element; bind its driver with bind_flipflop."""
        return self.netlist.add(NodeKind.FLIPFLOP, (), 1 if init else 0)

    def bind_flipflop(self, ff: int, next_state: int) -> None:
        self.netlist.bind_flipflop(ff, next_state)

    def state_word(self, width: int = WORD_BITS, init: int = 0):
        """A register of ``width`` flip-flops; returns (bits, binder).

        ``binder(next_bits)`` wires the register's next-state inputs —
        call it once the update logic exists.
        """
        flops = [self.flipflop((init >> i) & 1) for i in range(width)]

        def binder(next_bits: Sequence[int]) -> None:
            if len(next_bits) != width:
                raise CircuitError(
                    f"register is {width} bits, got {len(next_bits)}"
                )
            for ff, nxt in zip(flops, next_bits):
                self.bind_flipflop(ff, nxt)

        return list(flops), binder

    # ------------------------------------------------------------------
    # Bit-vector arithmetic (gate-level)
    # ------------------------------------------------------------------

    def xor_vec(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        self._check_same_width(a, b)
        return [self.xor_(x, y) for x, y in zip(a, b)]

    def and_vec(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        self._check_same_width(a, b)
        return [self.and_(x, y) for x, y in zip(a, b)]

    def mux_vec(self, sel: int, a: Sequence[int], b: Sequence[int]) -> List[int]:
        self._check_same_width(a, b)
        return [self.mux(sel, x, y) for x, y in zip(a, b)]

    def add_vec(
        self, a: Sequence[int], b: Sequence[int], carry_in: Optional[int] = None
    ) -> Tuple[List[int], int]:
        """Ripple-carry addition; returns (sum bits, carry out)."""
        self._check_same_width(a, b)
        carry = carry_in if carry_in is not None else self.const_bit(0)
        sums: List[int] = []
        for x, y in zip(a, b):
            partial = self.xor_(x, y)
            sums.append(self.xor_(partial, carry))
            # carry-out = majority(x, y, carry) = (x & y) | (carry & (x ^ y))
            carry = self.or_(self.and_(x, y), self.and_(carry, partial))
        return sums, carry

    def sub_vec(
        self, a: Sequence[int], b: Sequence[int]
    ) -> Tuple[List[int], int]:
        """a - b via two's complement; returns (difference, borrow-free flag).

        The returned flag is the adder's carry out, which is 1 exactly
        when a >= b for unsigned operands.
        """
        inverted = [self.not_(bit) for bit in b]
        return self.add_vec(a, inverted, self.const_bit(1))

    def eq_vec(self, a: Sequence[int], b: Sequence[int]) -> int:
        """1 when the two vectors are equal."""
        self._check_same_width(a, b)
        diffs = [self.gate(GateOp.XNOR, x, y) for x, y in zip(a, b)]
        return self.reduce_and(diffs)

    def lt_unsigned(self, a: Sequence[int], b: Sequence[int]) -> int:
        """1 when a < b, treating the vectors as unsigned."""
        _, geq = self.sub_vec(a, b)
        return self.not_(geq)

    def lt_signed(self, a: Sequence[int], b: Sequence[int]) -> int:
        """1 when a < b for two's-complement vectors of equal width."""
        diff, _ = self.sub_vec(a, b)
        sign_a, sign_b = a[-1], b[-1]
        sign_diff = diff[-1]
        # a < b  <=>  (sign_a != sign_b) ? sign_a : sign_diff
        differs = self.xor_(sign_a, sign_b)
        return self.mux(differs, sign_diff, sign_a)

    def reduce_and(self, bits: Sequence[int]) -> int:
        return self._reduce(GateOp.AND, bits)

    def reduce_or(self, bits: Sequence[int]) -> int:
        return self._reduce(GateOp.OR, bits)

    def reduce_xor(self, bits: Sequence[int]) -> int:
        return self._reduce(GateOp.XOR, bits)

    def _reduce(self, op: GateOp, bits: Sequence[int]) -> int:
        if not bits:
            raise CircuitError("cannot reduce an empty vector")
        work = list(bits)
        while len(work) > 1:
            nxt = [
                self.gate(op, work[i], work[i + 1])
                for i in range(0, len(work) - 1, 2)
            ]
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    @staticmethod
    def rotate_left(bits: Sequence[int], amount: int) -> List[int]:
        """Rotate a bit vector left (towards the MSB); free rewiring."""
        width = len(bits)
        amount %= width
        return [bits[(i - amount) % width] for i in range(width)]

    @staticmethod
    def shift_left_const(bits: Sequence[int], amount: int, zero: int) -> List[int]:
        """Logical shift left by a constant, filling with ``zero``."""
        width = len(bits)
        return [zero] * min(amount, width) + list(bits[: max(width - amount, 0)])

    # ------------------------------------------------------------------
    # Word-level operations
    # ------------------------------------------------------------------

    def word_from_bits(self, bits: Sequence[int]) -> Word:
        if len(bits) > WORD_BITS:
            raise CircuitError("too many bits for a word")
        padded = list(bits) + [self.const_bit(0)] * (WORD_BITS - len(bits))
        return Word(self, bits=padded)

    def mac(self, a: Word, b: Word, acc: Word) -> Word:
        """a * b + acc on the cluster's MAC unit (mod 2^32)."""
        nid = self.netlist.add(NodeKind.MAC, (a.nid, b.nid, acc.nid))
        return Word(self, word_nid=nid)

    def mul(self, a: Word, b: Word) -> Word:
        return self.mac(a, b, self.const_word(0))

    def add_words_mac(self, a: Word, b: Word) -> Word:
        """Word addition routed through the MAC unit (a * 1 + b)."""
        return self.mac(a, self.const_word(1), b)

    def add_words_gates(self, a: Word, b: Word) -> Word:
        """Word addition as a gate-level ripple adder (LUT-mapped)."""
        sums, _ = self.add_vec(a.bits, b.bits)
        return Word(self, bits=sums)

    def mux_word(self, sel: int, a: Word, b: Word) -> Word:
        return Word(self, bits=self.mux_vec(sel, a.bits, b.bits))

    def relu(self, value: Word) -> Word:
        """max(value, 0) for a signed 32-bit word."""
        sign = value.bits[-1]
        return self.mux_word(sign, value, self.const_word(0))

    def max_signed(self, a: Word, b: Word) -> Word:
        lt = self.lt_signed(a.bits, b.bits)
        return self.mux_word(lt, a, b)

    def min_max_unsigned(self, a: Word, b: Word) -> Tuple[Word, Word]:
        """(min, max) — the compare-exchange used by sorting networks."""
        lt = self.lt_unsigned(a.bits, b.bits)
        smaller = self.mux_word(lt, b, a)
        larger = self.mux_word(lt, a, b)
        return smaller, larger

    # ------------------------------------------------------------------

    @staticmethod
    def _check_same_width(a: Sequence[int], b: Sequence[int]) -> None:
        if len(a) != len(b):
            raise CircuitError(
                f"vector width mismatch: {len(a)} vs {len(b)}"
            )
