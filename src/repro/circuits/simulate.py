"""Functional netlist simulation (the reference semantics).

``simulate`` evaluates a combinational netlist once: primary inputs
come from ``bindings``, bus loads consume values from named
``streams`` in sequence-index order, and bus stores append to the
returned store streams.  The folded-execution engine in
``repro.freac.executor`` must agree with this function bit-for-bit —
that is the paper's implicit correctness contract for logic folding
and our central property test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import CircuitError
from .netlist import GateOp, Netlist, NodeKind, WORD_MASK, gate_truth_table


@dataclass
class SimulationResult:
    """Outputs and bus-store traffic of one invocation."""

    outputs: Dict[str, int] = field(default_factory=dict)
    stores: Dict[str, List[int]] = field(default_factory=dict)
    values: Dict[int, int] = field(default_factory=dict)
    ff_next: Dict[int, int] = field(default_factory=dict)


def _eval_gate(op: GateOp, values: Sequence[int]) -> int:
    arity, table = gate_truth_table(op)
    index = 0
    for position, value in enumerate(values):
        index |= (value & 1) << position
    return (table >> index) & 1


def simulate(
    netlist: Netlist,
    bindings: Optional[Mapping[str, int]] = None,
    streams: Optional[Mapping[str, Sequence[int]]] = None,
    ff_state: Optional[Mapping[int, int]] = None,
) -> SimulationResult:
    """Evaluate ``netlist`` once and return outputs plus store streams.

    ``ff_state`` maps flip-flop node ids to their current state (their
    payload initial value when absent); ``result.ff_next`` carries the
    state after this invocation's clock edge.
    """
    bindings = dict(bindings or {})
    streams = {name: list(values) for name, values in (streams or {}).items()}
    ff_state = dict(ff_state or {})
    values: Dict[int, int] = {}
    stores: Dict[str, List[int]] = {}
    pending_stores: Dict[str, Dict[int, int]] = {}

    for nid in netlist.topo_order():
        node = netlist.nodes[nid]
        kind = node.kind
        if kind is NodeKind.BIT_INPUT:
            name = node.payload
            if name not in bindings:
                raise CircuitError(f"missing binding for bit input {name!r}")
            values[nid] = bindings[name] & 1
        elif kind is NodeKind.WORD_INPUT:
            name = node.payload
            if name not in bindings:
                raise CircuitError(f"missing binding for word input {name!r}")
            values[nid] = bindings[name] & WORD_MASK
        elif kind is NodeKind.CONST:
            values[nid] = node.payload  # type: ignore[assignment]
        elif kind is NodeKind.WORD_CONST:
            values[nid] = node.payload & WORD_MASK  # type: ignore[operator]
        elif kind is NodeKind.GATE:
            values[nid] = _eval_gate(
                node.payload, [values[f] for f in node.fanins]  # type: ignore[arg-type]
            )
        elif kind is NodeKind.LUT:
            _, table = node.payload  # type: ignore[misc]
            index = 0
            for position, fanin in enumerate(node.fanins):
                index |= (values[fanin] & 1) << position
            values[nid] = (table >> index) & 1
        elif kind is NodeKind.MAC:
            a, b, acc = (values[f] for f in node.fanins)
            values[nid] = (a * b + acc) & WORD_MASK
        elif kind is NodeKind.BITSLICE:
            shifted = values[node.fanins[0]] >> node.payload  # type: ignore[operator]
            values[nid] = shifted & 1
        elif kind is NodeKind.PACK:
            word = 0
            for position, fanin in enumerate(node.fanins):
                word |= (values[fanin] & 1) << position
            values[nid] = word
        elif kind is NodeKind.BUS_LOAD:
            stream, index = node.payload  # type: ignore[misc]
            if stream not in streams:
                raise CircuitError(f"missing load stream {stream!r}")
            data = streams[stream]
            if index >= len(data):
                raise CircuitError(
                    f"load stream {stream!r} exhausted at index {index}"
                )
            values[nid] = data[index] & WORD_MASK
        elif kind is NodeKind.BUS_STORE:
            stream, index = node.payload  # type: ignore[misc]
            pending_stores.setdefault(stream, {})[index] = values[node.fanins[0]]
            values[nid] = values[node.fanins[0]]
        elif kind is NodeKind.FLIPFLOP:
            values[nid] = ff_state.get(nid, node.payload or 0)  # type: ignore[arg-type]
        else:  # pragma: no cover - exhaustive over NodeKind
            raise CircuitError(f"unhandled node kind {kind}")

    for stream, by_index in pending_stores.items():
        stores[stream] = [by_index[i] for i in sorted(by_index)]

    ff_next = {
        node.nid: values[node.fanins[0]] & 1
        for node in netlist.flipflops()
        if node.fanins
    }
    outputs = {name: values[nid] for name, nid in netlist.outputs.items()}
    return SimulationResult(
        outputs=outputs, stores=stores, values=values, ff_next=ff_next
    )


def simulate_sequential(
    netlist: Netlist,
    cycles: int,
    bindings_per_cycle: Optional[Sequence[Mapping[str, int]]] = None,
    streams_per_cycle: Optional[Sequence[Mapping[str, Sequence[int]]]] = None,
) -> List[SimulationResult]:
    """Clock a sequential netlist ``cycles`` times.

    Each element of the per-cycle sequences feeds one invocation; the
    flip-flop state threads through automatically.
    """
    results: List[SimulationResult] = []
    state: Dict[int, int] = {}
    for cycle in range(cycles):
        bindings = bindings_per_cycle[cycle] if bindings_per_cycle else None
        streams = streams_per_cycle[cycle] if streams_per_cycle else None
        result = simulate(netlist, bindings, streams, ff_state=state)
        state = result.ff_next
        results.append(result)
    return results
