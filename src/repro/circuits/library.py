"""Processing-element circuits for every evaluated benchmark.

Each factory returns a :class:`PeCircuit`: the raw netlist of one
accelerator invocation ("item"), the stream schema of its bus traffic,
and a reference function computing the expected stores from the loads
— so any PE can be checked end-to-end against the Python kernels.

Design rules follow the paper's Sec. IV guidance: a single memory
port (all external data moves as bus loads/stores), no internal
memory buffers, MACs for multiplies, gate-level logic elsewhere.  The
mix is deliberately diverse: AES and SRT are logic (LUT) heavy, GEMM /
DOT / FC / CONV / STN are MAC heavy, VADD / KMP are small and
memory-ish — matching the paper's "compute, memory, and logic (LUT)
bound apps".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Mapping, Sequence

from ..workloads import kernels as ref
from .builder import CircuitBuilder, Word
from .netlist import Netlist

MASK32 = 0xFFFFFFFF

Streams = Dict[str, List[int]]


@dataclass
class PeCircuit:
    """One benchmark's processing element."""

    name: str
    netlist: Netlist
    loads: Dict[str, int]          # stream -> words per invocation
    stores: Dict[str, int]         # stream -> words per invocation
    reference: Callable[[Mapping[str, Sequence[int]]], Streams]

    @property
    def bus_words_per_item(self) -> int:
        return sum(self.loads.values()) + sum(self.stores.values())


# ---------------------------------------------------------------------------
# Word-level (MAC-dominated) kernels
# ---------------------------------------------------------------------------

def _mac_tree(builder: CircuitBuilder, pairs: List[tuple]) -> Word:
    """Sum-of-products as a balanced reduction tree.

    Products are independent and the partial-sum tree has log depth,
    so folding onto a multi-MCC tile shortens the schedule — the
    behaviour the paper's Fig. 8 relies on.  (A serial MAC chain would
    pin the fold count to the chain length regardless of tile size.)
    """
    terms: List[Word] = [builder.mac(a, b, builder.const_word(0)) for a, b in pairs]
    while len(terms) > 1:
        reduced: List[Word] = []
        for index in range(0, len(terms) - 1, 2):
            reduced.append(builder.add_words_mac(terms[index], terms[index + 1]))
        if len(terms) % 2:
            reduced.append(terms[-1])
        terms = reduced
    return terms[0]


def build_dot_pe(pairs: int = 8) -> PeCircuit:
    """DOT: a sum-of-products tree over ``pairs`` (a, w) operand pairs."""
    builder = CircuitBuilder("dot")
    operands = [
        (builder.bus_load("a"), builder.bus_load("w")) for _ in range(pairs)
    ]
    builder.bus_store("out", _mac_tree(builder, operands))

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        return {"out": [ref.dot_product(streams["a"], streams["w"])]}

    return PeCircuit(
        name="DOT",
        netlist=builder.netlist,
        loads={"a": pairs, "w": pairs},
        stores={"out": 1},
        reference=reference,
    )


def build_gemm_pe(inner: int = 16) -> PeCircuit:
    """GEMM: one C element = inner product of an A row and B column."""
    builder = CircuitBuilder("gemm")
    operands = [
        (builder.bus_load("a_row"), builder.bus_load("b_col"))
        for _ in range(inner)
    ]
    builder.bus_store("c", _mac_tree(builder, operands))

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        return {"c": [ref.dot_product(streams["a_row"], streams["b_col"])]}

    return PeCircuit(
        name="GEMM",
        netlist=builder.netlist,
        loads={"a_row": inner, "b_col": inner},
        stores={"c": 1},
        reference=reference,
    )


def build_conv_pe(taps: Sequence[int] = (3, 5, 7, 9, 11, 13, 17, 19)) -> PeCircuit:
    """CONV: one output sample of a 1-D convolution, constant taps."""
    builder = CircuitBuilder("conv")
    operands = [
        (builder.bus_load("window"), builder.const_word(tap)) for tap in taps
    ]
    builder.bus_store("out", _mac_tree(builder, operands))
    taps_list = [t & MASK32 for t in taps]

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        return {"out": [ref.dot_product(streams["window"], taps_list)]}

    return PeCircuit(
        name="CONV",
        netlist=builder.netlist,
        loads={"window": len(taps)},
        stores={"out": 1},
        reference=reference,
    )


def build_fc_pe(inputs: int = 32) -> PeCircuit:
    """FC: one output neuron — inner product + bias + ReLU."""
    builder = CircuitBuilder("fc")
    operands = [
        (builder.bus_load("x"), builder.bus_load("w")) for _ in range(inputs)
    ]
    acc = _mac_tree(builder, operands)
    acc = builder.add_words_mac(builder.bus_load("bias"), acc)
    builder.bus_store("y", builder.relu(acc))

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        result = ref.fc_layer(
            streams["x"], [streams["w"]], [streams["bias"][0]]
        )
        return {"y": result}

    return PeCircuit(
        name="FC",
        netlist=builder.netlist,
        loads={"x": inputs, "w": inputs, "bias": 1},
        stores={"y": 1},
        reference=reference,
    )


def build_stencil2d_pe(
    weights: Sequence[Sequence[int]] = ((1, 2, 1), (2, 4, 2), (1, 2, 1)),
) -> PeCircuit:
    """STN2: one 3x3 weighted stencil output, constant weights."""
    builder = CircuitBuilder("stn2")
    flat = [w for row in weights for w in row]
    operands = [
        (builder.bus_load("window"), builder.const_word(weight))
        for weight in flat
    ]
    builder.bus_store("out", _mac_tree(builder, operands))
    flat_masked = [w & MASK32 for w in flat]

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        return {"out": [ref.dot_product(streams["window"], flat_masked)]}

    return PeCircuit(
        name="STN2",
        netlist=builder.netlist,
        loads={"window": 9},
        stores={"out": 1},
        reference=reference,
    )


def build_stencil3d_pe(center: int = 6, face: int = 1) -> PeCircuit:
    """STN3: one 7-point 3-D stencil output."""
    builder = CircuitBuilder("stn3")
    operands = [(builder.bus_load("window"), builder.const_word(center))]
    operands += [
        (builder.bus_load("window"), builder.const_word(face)) for _ in range(6)
    ]
    builder.bus_store("out", _mac_tree(builder, operands))

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        window = streams["window"]
        acc = (center * window[0]) & MASK32
        for value in window[1:7]:
            acc = (acc + face * value) & MASK32
        return {"out": [acc]}

    return PeCircuit(
        name="STN3",
        netlist=builder.netlist,
        loads={"window": 7},
        stores={"out": 1},
        reference=reference,
    )


def build_vadd_pe() -> PeCircuit:
    """VADD: one element pair, gate-level ripple adder (no MAC use)."""
    builder = CircuitBuilder("vadd")
    total = builder.add_words_gates(builder.bus_load("a"), builder.bus_load("b"))
    builder.bus_store("c", total)

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        return {"c": ref.vadd(streams["a"], streams["b"])}

    return PeCircuit(
        name="VADD",
        netlist=builder.netlist,
        loads={"a": 1, "b": 1},
        stores={"c": 1},
        reference=reference,
    )


# ---------------------------------------------------------------------------
# Logic-heavy kernels
# ---------------------------------------------------------------------------

def build_srt_pe(lanes: int = 4) -> PeCircuit:
    """SRT: ``lanes`` compare-exchange pairs of a merge network."""
    builder = CircuitBuilder("srt")
    for _ in range(lanes):
        a = builder.bus_load("pairs")
        b = builder.bus_load("pairs")
        low, high = builder.min_max_unsigned(a, b)
        builder.bus_store("sorted", low)
        builder.bus_store("sorted", high)

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        out: List[int] = []
        pairs = streams["pairs"]
        for i in range(0, len(pairs), 2):
            low, high = ref.compare_exchange(pairs[i], pairs[i + 1])
            out.extend((low, high))
        return {"sorted": out}

    return PeCircuit(
        name="SRT",
        netlist=builder.netlist,
        loads={"pairs": 2 * lanes},
        stores={"sorted": 2 * lanes},
        reference=reference,
    )


def build_nw_pe(match: int = 1, mismatch: int = -1, gap: int = -1) -> PeCircuit:
    """NW: one Needleman-Wunsch DP cell, gate-level adders and max tree."""
    builder = CircuitBuilder("nw")
    nw = builder.bus_load("cells")   # diagonal neighbour
    west = builder.bus_load("cells")
    north = builder.bus_load("cells")
    char_a = builder.bus_load("chars")
    char_b = builder.bus_load("chars")

    is_match = builder.eq_vec(char_a.bits[:8], char_b.bits[:8])
    score = builder.mux_word(
        is_match, builder.const_word(mismatch), builder.const_word(match)
    )
    diag = builder.add_words_gates(nw, score)
    left = builder.add_words_gates(west, builder.const_word(gap))
    up = builder.add_words_gates(north, builder.const_word(gap))
    best = builder.max_signed(builder.max_signed(diag, left), up)
    builder.bus_store("out", best)

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        cells, chars = streams["cells"], streams["chars"]
        return {
            "out": [
                ref.nw_cell(
                    cells[0], cells[1], cells[2],
                    chars[0] & 0xFF, chars[1] & 0xFF,
                    match, mismatch, gap,
                )
            ]
        }

    return PeCircuit(
        name="NW",
        netlist=builder.netlist,
        loads={"cells": 3, "chars": 2},
        stores={"out": 1},
        reference=reference,
    )


def build_kmp_pe(pattern: Sequence[int] = (0x41, 0x42, 0x41, 0x43)) -> PeCircuit:
    """KMP: one automaton step of the pattern matcher.

    The pattern and its failure function are compile-time constants
    (they configure the accelerator); the text character and current
    state stream in, the next state and a match flag stream out.
    """
    builder = CircuitBuilder("kmp")
    pattern = [p & 0xFF for p in pattern]
    failure = ref.kmp_failure(pattern)
    state_word = builder.bus_load("state")
    char_word = builder.bus_load("text")
    state_bits = state_word.bits[:3]
    char_bits = char_word.bits[:8]

    # next_state(s, equal?) resolved by explicit mux logic per state.
    matches_char = [
        builder.eq_vec(char_bits, builder.const_bits(p, 8)) for p in pattern
    ]
    # Transition table: for state s, if char == pattern[s] -> s+1 else
    # fall back through the failure chain, re-testing at each hop —
    # precompute delta(s, c) as pure logic over the 4 comparator bits.
    n = len(pattern)

    def delta_logic(state_index: int) -> Word:
        # Build nested muxes following the classic KMP automaton:
        # try k = state_index, failure[k-1], ... until match or zero.
        chain: List[int] = []
        k = state_index
        while True:
            chain.append(k)
            if k == 0:
                break
            k = failure[k - 1]
        result = builder.const_word(0)
        for k in reversed(chain):
            advanced = builder.const_word(k + 1)
            result = builder.mux_word(matches_char[k], result, advanced)
        return result

    next_states = [delta_logic(s) for s in range(n)]
    selected = next_states[0]
    for s in range(1, n):
        is_state = builder.eq_vec(state_bits, builder.const_bits(s, 3))
        selected = builder.mux_word(is_state, selected, next_states[s])
    hit = builder.eq_vec(selected.bits[:3], builder.const_bits(n, 3))
    final_state = builder.mux_word(
        hit, selected, builder.const_word(failure[n - 1])
    )
    builder.bus_store("state_out", final_state)
    builder.bus_store("match", builder.word_from_bits([hit]))

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        state = streams["state"][0] & 0x7
        char = streams["text"][0] & 0xFF
        next_state, matched = ref.kmp_step(pattern, failure, state, char)
        return {"state_out": [next_state], "match": [1 if matched else 0]}

    return PeCircuit(
        name="KMP",
        netlist=builder.netlist,
        loads={"state": 1, "text": 1},
        stores={"state_out": 1, "match": 1},
        reference=reference,
    )


# ---------------------------------------------------------------------------
# AES-128 (the flagship logic-bound kernel)
# ---------------------------------------------------------------------------

def _sbox_byte(builder: CircuitBuilder, byte_bits: List[int]) -> List[int]:
    """SubBytes on one byte: eight 8-input truth tables (paper-style
    wide LUTs, Shannon-decomposed by the technology mapper)."""
    sbox = ref.aes_sbox()
    out_bits = []
    for bit_index in range(8):
        table = 0
        for value in range(256):
            table |= ((sbox[value] >> bit_index) & 1) << value
        out_bits.append(builder.raw_lut(byte_bits, table))
    return out_bits


def _xtime(builder: CircuitBuilder, byte_bits: List[int]) -> List[int]:
    """Multiply by x in GF(2^8): shift left, conditionally xor 0x1B."""
    msb = byte_bits[7]
    zero = builder.const_bit(0)
    shifted = [zero] + byte_bits[:7]
    result = []
    for position in range(8):
        if (0x1B >> position) & 1:
            result.append(builder.xor_(shifted[position], msb))
        else:
            result.append(shifted[position])
    return result


def build_aes_pe(rounds: int = 10) -> PeCircuit:
    """AES-128 encryption of one 16-byte block.

    Round keys stream in over the bus (44 words for the full cipher) —
    the host writes the expanded key into the scratchpad once per
    batch.  The circuit is pure logic: ~1.3k wide S-box LUTs plus the
    MixColumns / AddRoundKey XOR network, making it the paper's
    highest-fold-count benchmark.
    """
    if not 1 <= rounds <= 10:
        raise ValueError("AES-128 has 1..10 rounds")
    builder = CircuitBuilder("aes")

    def load_state(stream: str) -> List[List[int]]:
        state = []
        for _ in range(4):
            word = builder.bus_load(stream)
            bits = word.bits
            for byte in range(4):
                state.append(bits[8 * byte : 8 * byte + 8])
        return state

    def xor_state(state, key_bytes):
        return [builder.xor_vec(s, k) for s, k in zip(state, key_bytes)]

    state = load_state("pt")
    round_keys = [load_state("rk") for _ in range(rounds + 1)]
    state = xor_state(state, round_keys[0])

    for round_index in range(1, rounds + 1):
        state = [_sbox_byte(builder, byte) for byte in state]
        # ShiftRows: free rewiring.  The state is column-major (byte
        # row + 4*col), so new[row + 4*col] = old[row + 4*((col+row)%4)].
        state = [
            state[row + 4 * ((col + row) % 4)]
            for col in range(4)
            for row in range(4)
        ]
        if round_index < rounds:
            mixed = []
            for col in range(4):
                a = state[4 * col : 4 * col + 4]
                xt = [_xtime(builder, byte) for byte in a]
                # 2a0 ^ 3a1 ^ a2 ^ a3 etc.; 3a = xtime(a) ^ a
                def x3(i):
                    return builder.xor_vec(xt[i], a[i])
                mixed.append(
                    builder.xor_vec(
                        builder.xor_vec(xt[0], x3(1)), builder.xor_vec(a[2], a[3])
                    )
                )
                mixed.append(
                    builder.xor_vec(
                        builder.xor_vec(a[0], xt[1]), builder.xor_vec(x3(2), a[3])
                    )
                )
                mixed.append(
                    builder.xor_vec(
                        builder.xor_vec(a[0], a[1]), builder.xor_vec(xt[2], x3(3))
                    )
                )
                mixed.append(
                    builder.xor_vec(
                        builder.xor_vec(x3(0), a[1]), builder.xor_vec(a[2], xt[3])
                    )
                )
            state = mixed
        state = xor_state(state, round_keys[round_index])

    for word_index in range(4):
        word_bits = [
            bit
            for byte in state[4 * word_index : 4 * word_index + 4]
            for bit in byte
        ]
        builder.bus_store("ct", builder.word_from_bits(word_bits))

    def reference(streams: Mapping[str, Sequence[int]]) -> Streams:
        def words_to_bytes(words: Sequence[int]) -> bytes:
            return b"".join(int(w).to_bytes(4, "little") for w in words)

        block = words_to_bytes(streams["pt"][:4])
        key_schedule = [
            list(words_to_bytes(streams["rk"][4 * r : 4 * r + 4]))
            for r in range(rounds + 1)
        ]
        state_bytes = [b ^ k for b, k in zip(block, key_schedule[0])]
        sbox = ref.aes_sbox()
        for round_index in range(1, rounds + 1):
            state_bytes = [sbox[b] for b in state_bytes]
            state_bytes = ref._shift_rows(state_bytes)
            if round_index < rounds:
                mixed: List[int] = []
                for col in range(4):
                    mixed.extend(
                        ref._mix_single_column(state_bytes[4 * col : 4 * col + 4])
                    )
                state_bytes = mixed
            state_bytes = [
                b ^ k for b, k in zip(state_bytes, key_schedule[round_index])
            ]
        out = bytes(state_bytes)
        return {
            "ct": [
                int.from_bytes(out[4 * i : 4 * i + 4], "little") for i in range(4)
            ]
        }

    return PeCircuit(
        name="AES",
        netlist=builder.netlist,
        loads={"pt": 4, "rk": 4 * (rounds + 1)},
        stores={"ct": 4},
        reference=reference,
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_FACTORIES: Dict[str, Callable[[], PeCircuit]] = {
    "AES": build_aes_pe,
    "CONV": build_conv_pe,
    "DOT": build_dot_pe,
    "FC": build_fc_pe,
    "GEMM": build_gemm_pe,
    "KMP": build_kmp_pe,
    "NW": build_nw_pe,
    "SRT": build_srt_pe,
    "STN2": build_stencil2d_pe,
    "STN3": build_stencil3d_pe,
    "VADD": build_vadd_pe,
}


def pe_names() -> List[str]:
    return sorted(_FACTORIES)


# One lock guards every memo below.  ``lru_cache`` lookups are atomic
# in CPython, but without the lock two threads missing simultaneously
# both run the (seconds-long, for AES) build, and a ``clear_cache``
# racing a ``mapped_pe`` can hand out a netlist built from an entry
# the clearer believes is gone.  An RLock because ``mapped_pe`` and
# ``library_version`` call back into :func:`build_pe`.
_CACHE_LOCK = threading.RLock()


@lru_cache(maxsize=None)
def _build_pe(name: str) -> PeCircuit:
    try:
        factory = _FACTORIES[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(pe_names())}"
        )
    return factory()


def build_pe(name: str) -> PeCircuit:
    """Build (and cache) the processing element for a benchmark.

    Thread-safe: concurrent callers (the serving layer's executors,
    parallel tests) serialise on one lock, so each PE is built once.
    """
    with _CACHE_LOCK:
        return _build_pe(name)


@lru_cache(maxsize=None)
def _mapped_pe(name: str, k: int) -> Netlist:
    from .techmap import technology_map

    return technology_map(_build_pe(name).netlist, k=k).netlist


def mapped_pe(name: str, k: int = 5) -> Netlist:
    """The technology-mapped netlist of a benchmark PE (cached).

    Mapping AES takes a few seconds, and every experiment over tile
    sizes reuses the same mapped circuit, so this cache matters.
    Memoized by (name, LUT width); drop entries with
    :func:`clear_cache`.  Thread-safe, like :func:`build_pe`.
    """
    with _CACHE_LOCK:
        return _mapped_pe(name, k)


@lru_cache(maxsize=1)
def _library_version() -> str:
    import hashlib
    from pathlib import Path

    return hashlib.sha256(Path(__file__).read_bytes()).hexdigest()[:16]


def library_version() -> str:
    """Content hash of this PE library, for compiled-program cache keys.

    Any edit to a factory changes the hash, so a serving layer's
    on-disk program cache (``repro.service``) never replays a stale
    netlist compiled from an older library.
    """
    with _CACHE_LOCK:
        return _library_version()


def clear_cache() -> None:
    """Invalidate every memoized PE and mapped netlist.

    Tests (and cold-start benchmarks) call this to force the next
    :func:`build_pe` / :func:`mapped_pe` to rebuild from scratch.
    Thread-safe: a clear never interleaves with an in-flight build.
    """
    with _CACHE_LOCK:
        _build_pe.cache_clear()
        _mapped_pe.cache_clear()
        _library_version.cache_clear()
