"""Topological levelling of mapped netlists (paper Fig. 4a / Sec. IV).

"Our folding algorithm begins by performing a topological sort of the
input DAG, which is then used to produce a leveled graph [...] where
each level consists of nodes with no dependence on each other, but
with incoming edges from nodes in a higher level."

Only *op* nodes (LUT, MAC, bus load/store) occupy levels; wiring nodes
(PACK, BITSLICE, constants, I/O) are transparent and inherit the
maximum level of their producers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .netlist import Netlist, NodeKind


@dataclass
class LeveledGraph:
    """Op nodes grouped into dependence levels (level 1 = first)."""

    netlist: Netlist
    levels: List[List[int]]
    node_level: Dict[int, int]

    @property
    def depth(self) -> int:
        return len(self.levels)

    def level_sizes(self) -> List[int]:
        return [len(level) for level in self.levels]

    def widest_level(self) -> int:
        return max(self.level_sizes(), default=0)


def level_graph(netlist: Netlist) -> LeveledGraph:
    """Assign every op node its ASAP level."""
    # reach[nid] = highest op level among the node's transitive producers.
    reach: Dict[int, int] = {}
    node_level: Dict[int, int] = {}
    levels: List[List[int]] = []

    for nid in netlist.topo_order():
        node = netlist.nodes[nid]
        if node.kind is NodeKind.FLIPFLOP:
            reach[nid] = 0  # stored state: available before level 1
            continue
        producer_level = max(
            (reach[f] for f in node.fanins), default=0
        )
        if node.is_op:
            level = producer_level + 1
            node_level[nid] = level
            while len(levels) < level:
                levels.append([])
            levels[level - 1].append(nid)
            reach[nid] = level
        else:
            reach[nid] = producer_level

    return LeveledGraph(netlist=netlist, levels=levels, node_level=node_level)
