"""Netlist (de)serialisation.

Mapped netlists are expensive to rebuild (AES takes seconds of
synthesis), so they can be saved as JSON-compatible dictionaries and
reloaded exactly.  The format is versioned; loading a mismatched
version fails loudly rather than mis-parsing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from ..errors import CircuitError
from .netlist import GateOp, Netlist, NodeKind

FORMAT_VERSION = 1


def netlist_to_dict(netlist: Netlist) -> Dict:
    """A JSON-compatible representation of a netlist."""
    nodes: List[List] = []
    for node in netlist.nodes:
        payload = node.payload
        if isinstance(payload, GateOp):
            payload = ["gate_op", payload.value]
        elif isinstance(payload, tuple):
            payload = ["tuple", list(payload)]
        else:
            payload = ["raw", payload]
        nodes.append([node.kind.value, list(node.fanins), payload])
    return {
        "version": FORMAT_VERSION,
        "name": netlist.name,
        "nodes": nodes,
        "outputs": dict(netlist.outputs),
    }


def netlist_from_dict(data: Dict) -> Netlist:
    """Inverse of :func:`netlist_to_dict`."""
    if data.get("version") != FORMAT_VERSION:
        raise CircuitError(
            f"netlist format version {data.get('version')!r} not supported"
        )
    netlist = Netlist(data["name"])
    ff_bindings: List[tuple] = []
    for kind_value, fanins, (tag, payload) in data["nodes"]:
        kind = NodeKind(kind_value)
        if tag == "gate_op":
            payload = GateOp(payload)
        elif tag == "tuple":
            payload = tuple(payload)
        if kind is NodeKind.FLIPFLOP and fanins:
            nid = netlist.add(kind, (), payload)
            ff_bindings.append((nid, fanins[0]))
        else:
            netlist.add(kind, tuple(fanins), payload)
    for ff, driver in ff_bindings:
        netlist.bind_flipflop(ff, driver)
    for name, nid in data["outputs"].items():
        netlist.set_output(name, nid)
    return netlist


def save_netlist(netlist: Netlist, path: Path | str) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(netlist_to_dict(netlist)))


def load_netlist(path: Path | str) -> Netlist:
    return netlist_from_dict(json.loads(Path(path).read_text()))
