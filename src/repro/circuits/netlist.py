"""The netlist IR: a DAG of bit- and word-level nodes.

Design notes
------------

* Every node produces exactly one value: a single bit (gates, LUTs,
  bit inputs, constants) or one 32-bit word (MACs, bus loads, packs,
  word inputs/constants).
* ``BITSLICE`` and ``PACK`` bridge the two levels.  In hardware they
  are wiring, so synthesis, scheduling, and the area model all treat
  them as free.
* ``BUS_LOAD`` / ``BUS_STORE`` are the accelerator's only window to
  the outside world (paper Sec. IV: "an accelerator tile should be
  designed with a single memory port").  Each executes as one bus
  operation in the folding schedule.
* The netlist is immutable-by-convention once built: nodes are only
  appended, never edited, which keeps the topological order cache
  valid.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import CircuitError

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1


class NodeKind(enum.Enum):
    BIT_INPUT = "bit_input"      # payload: name
    WORD_INPUT = "word_input"    # payload: name
    CONST = "const"              # payload: 0 or 1
    WORD_CONST = "word_const"    # payload: value
    GATE = "gate"                # payload: GateOp
    LUT = "lut"                  # payload: (k, truth table int)
    MAC = "mac"                  # fanins (a, b, acc): a*b+acc mod 2^32
    BITSLICE = "bitslice"        # payload: bit index; fanin: word
    PACK = "pack"                # fanins: bits, LSB first
    BUS_LOAD = "bus_load"        # payload: (stream name, sequence index)
    BUS_STORE = "bus_store"      # payload: (stream name, sequence index)
    FLIPFLOP = "flipflop"        # payload: initial value; fanin: next-state bit
                                 # (bound after creation — see bind_flipflop)


class GateOp(enum.Enum):
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"
    MUX = "mux"  # fanins (sel, a, b): a when sel=0 else b

    @property
    def arity(self) -> int:
        if self in (GateOp.NOT, GateOp.BUF):
            return 1
        if self is GateOp.MUX:
            return 3
        return 2


# Truth tables for 2-input gates, LSB = f(a=0, b=0); input order (a, b)
# with a as bit 0 of the index.
_GATE_TABLES = {
    GateOp.AND: 0b1000,
    GateOp.OR: 0b1110,
    GateOp.XOR: 0b0110,
    GateOp.NAND: 0b0111,
    GateOp.NOR: 0b0001,
    GateOp.XNOR: 0b1001,
}
# MUX(sel, a, b): index bits (sel=bit0, a=bit1, b=bit2).
_MUX_TABLE = sum(
    ((b if sel else a) << (sel | (a << 1) | (b << 2)))
    for sel in (0, 1)
    for a in (0, 1)
    for b in (0, 1)
)

_BIT_KINDS = frozenset(
    {
        NodeKind.BIT_INPUT,
        NodeKind.CONST,
        NodeKind.GATE,
        NodeKind.LUT,
        NodeKind.BITSLICE,
        NodeKind.FLIPFLOP,
    }
)

# Kinds that occupy a folding-schedule slot (everything else is wiring
# or I/O handled outside the datapath).
OP_KINDS = frozenset({NodeKind.GATE, NodeKind.LUT, NodeKind.MAC,
                      NodeKind.BUS_LOAD, NodeKind.BUS_STORE})


def gate_truth_table(op: GateOp) -> Tuple[int, int]:
    """(arity, truth table) of a gate, for conversion to a LUT."""
    if op is GateOp.NOT:
        return 1, 0b01
    if op is GateOp.BUF:
        return 1, 0b10
    if op is GateOp.MUX:
        return 3, _MUX_TABLE
    return 2, _GATE_TABLES[op]


@dataclass(frozen=True)
class Node:
    nid: int
    kind: NodeKind
    fanins: Tuple[int, ...]
    payload: object = None

    @property
    def is_bit(self) -> bool:
        return self.kind in _BIT_KINDS

    @property
    def is_word(self) -> bool:
        return not self.is_bit

    @property
    def is_op(self) -> bool:
        """Does this node consume a resource slot when folded?"""
        return self.kind in OP_KINDS


class Netlist:
    """An append-only DAG of :class:`Node` objects."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.outputs: Dict[str, int] = {}
        self._topo_valid = True  # appended nodes only reference earlier ids

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, kind: NodeKind, fanins: Sequence[int] = (),
            payload: object = None) -> int:
        nid = len(self.nodes)
        for fanin in fanins:
            if not 0 <= fanin < nid:
                raise CircuitError(
                    f"node {nid} references fanin {fanin} that does not "
                    "precede it (netlists are built in topological order)"
                )
        self._check_arity(kind, fanins, payload)
        self.nodes.append(Node(nid, kind, tuple(fanins), payload))
        return nid

    def bind_flipflop(self, ff_nid: int, next_state_nid: int) -> None:
        """Attach a flip-flop's next-state driver after the fact.

        Flip-flops close sequential feedback loops, so their driver is
        usually created *after* them.  The edge is not a combinational
        dependence (the FF's output is its stored state), so the
        netlist's topological order remains valid for evaluation.
        """
        self._check_nid(ff_nid)
        self._check_nid(next_state_nid)
        node = self.nodes[ff_nid]
        if node.kind is not NodeKind.FLIPFLOP:
            raise CircuitError(f"node {ff_nid} is not a flip-flop")
        if node.fanins:
            raise CircuitError(f"flip-flop {ff_nid} is already bound")
        self.nodes[ff_nid] = Node(
            ff_nid, NodeKind.FLIPFLOP, (next_state_nid,), node.payload
        )

    def flipflops(self) -> List[Node]:
        return [n for n in self.nodes if n.kind is NodeKind.FLIPFLOP]

    def set_output(self, name: str, nid: int) -> None:
        if name in self.outputs:
            raise CircuitError(f"duplicate output name {name!r}")
        self._check_nid(nid)
        self.outputs[name] = nid

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, nid: int) -> Node:
        self._check_nid(nid)
        return self.nodes[nid]

    def topo_order(self) -> range:
        """Node ids in topological order (construction order, by design)."""
        return range(len(self.nodes))

    def counts(self) -> Dict[str, int]:
        """Node counts by kind (the paper's netlist statistics)."""
        result: Dict[str, int] = {}
        for node in self.nodes:
            result[node.kind.value] = result.get(node.kind.value, 0) + 1
        return result

    def op_nodes(self) -> List[Node]:
        return [node for node in self.nodes if node.is_op]

    def bus_ops(self) -> Tuple[int, int]:
        """(loads, stores) — memory traffic per invocation."""
        loads = sum(1 for n in self.nodes if n.kind is NodeKind.BUS_LOAD)
        stores = sum(1 for n in self.nodes if n.kind is NodeKind.BUS_STORE)
        return loads, stores

    def fanout_counts(self) -> List[int]:
        fanout = [0] * len(self.nodes)
        for node in self.nodes:
            for fanin in node.fanins:
                fanout[fanin] += 1
        for nid in self.outputs.values():
            fanout[nid] += 1
        return fanout

    def input_names(self) -> List[str]:
        return [
            node.payload  # type: ignore[misc]
            for node in self.nodes
            if node.kind in (NodeKind.BIT_INPUT, NodeKind.WORD_INPUT)
        ]

    def validate(self) -> None:
        """Full structural check (arity and ordering are checked on add)."""
        for name, nid in self.outputs.items():
            self._check_nid(nid)
        seen_streams: Dict[Tuple[str, str], List[int]] = {}
        for node in self.nodes:
            if node.kind in (NodeKind.BUS_LOAD, NodeKind.BUS_STORE):
                stream, index = node.payload  # type: ignore[misc]
                key = (node.kind.value, stream)
                seen_streams.setdefault(key, []).append(index)
        for (kind, stream), indices in seen_streams.items():
            if sorted(indices) != list(range(len(indices))):
                raise CircuitError(
                    f"{kind} stream {stream!r} has non-contiguous sequence "
                    f"indices {sorted(indices)[:5]}..."
                )
        for node in self.flipflops():
            if not node.fanins:
                raise CircuitError(
                    f"flip-flop {node.nid} has no next-state driver; call "
                    "bind_flipflop before using the netlist"
                )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_nid(self, nid: int) -> None:
        if not 0 <= nid < len(self.nodes):
            raise CircuitError(f"node id {nid} out of range")

    def _check_arity(
        self, kind: NodeKind, fanins: Sequence[int], payload: object
    ) -> None:
        n = len(fanins)
        if kind is NodeKind.GATE:
            op = payload
            if not isinstance(op, GateOp):
                raise CircuitError("GATE payload must be a GateOp")
            if n != op.arity:
                raise CircuitError(f"{op.value} gate needs {op.arity} fanins, got {n}")
        elif kind is NodeKind.LUT:
            if (
                not isinstance(payload, tuple)
                or len(payload) != 2
                or payload[0] != n
            ):
                raise CircuitError("LUT payload must be (k, table) with k fanins")
            k, table = payload
            if k < 1:
                raise CircuitError("LUT needs at least one input")
            if not 0 <= table < (1 << (1 << k)):
                raise CircuitError(f"LUT table does not fit {k} inputs")
        elif kind is NodeKind.MAC:
            if n != 3:
                raise CircuitError("MAC needs fanins (a, b, acc)")
        elif kind is NodeKind.BITSLICE:
            if n != 1 or not isinstance(payload, int) or not 0 <= payload < WORD_BITS:
                raise CircuitError("BITSLICE needs one word fanin and a bit index")
        elif kind is NodeKind.PACK:
            if not 1 <= n <= WORD_BITS:
                raise CircuitError(f"PACK takes 1..{WORD_BITS} bit fanins")
        elif kind in (NodeKind.BUS_LOAD, NodeKind.BUS_STORE):
            expected = 0 if kind is NodeKind.BUS_LOAD else 1
            if n != expected:
                raise CircuitError(f"{kind.value} needs {expected} fanins")
            if not isinstance(payload, tuple) or len(payload) != 2:
                raise CircuitError(f"{kind.value} payload must be (stream, index)")
        elif kind in (NodeKind.BIT_INPUT, NodeKind.WORD_INPUT):
            if n != 0 or not isinstance(payload, str):
                raise CircuitError("inputs take no fanins and a string name")
        elif kind is NodeKind.CONST:
            if n != 0 or payload not in (0, 1):
                raise CircuitError("CONST payload must be 0 or 1")
        elif kind is NodeKind.WORD_CONST:
            if n != 0 or not isinstance(payload, int):
                raise CircuitError("WORD_CONST payload must be an int")
        elif kind is NodeKind.FLIPFLOP:
            if n > 1:
                raise CircuitError("FLIPFLOP takes one next-state fanin at most")
            if payload not in (0, 1):
                raise CircuitError("FLIPFLOP initial value must be 0 or 1")
