"""Extra accelerator circuits beyond the paper's benchmark set.

These demonstrate library generality (and the sequential-circuit
support) without being part of the reproduced figures:

* ``build_crc32_pe`` — the IEEE 802.3 CRC-32, one byte per
  invocation, with the 32-bit CRC register living in flip-flops.  The
  folded executor threads the state through the MCC FF banks across
  invocations, and the result matches ``binascii.crc32``.
* ``build_popcount_pe`` — a population-count reduction (a common
  bitmap-analytics primitive).
"""

from __future__ import annotations

from typing import List

from .builder import CircuitBuilder
from .netlist import Netlist

CRC32_POLY = 0xEDB88320  # reflected IEEE 802.3 polynomial


def build_crc32_pe() -> Netlist:
    """CRC-32 over a byte stream, one byte per invocation.

    State convention: the register holds ``crc ^ 0xFFFFFFFF`` of the
    bytes so far (i.e. the raw LFSR state with the standard pre/post
    inversion applied by the host).  Reset state = 0xFFFFFFFF.
    """
    builder = CircuitBuilder("crc32")
    state, bind = builder.state_word(32, init=0xFFFFFFFF)
    byte = builder.bus_load("bytes")

    # crc ^= byte (low 8 bits).
    current: List[int] = list(state)
    for i in range(8):
        current[i] = builder.xor_(current[i], byte.bits[i])

    # Eight unrolled LFSR steps:
    #   lsb = crc & 1; crc >>= 1; if lsb: crc ^= POLY
    zero = builder.const_bit(0)
    for _ in range(8):
        lsb = current[0]
        shifted = current[1:] + [zero]
        stepped = []
        for i in range(32):
            if (CRC32_POLY >> i) & 1:
                stepped.append(builder.xor_(shifted[i], lsb))
            else:
                stepped.append(shifted[i])
        current = stepped

    bind(current)
    # Stream out the finalised CRC (state inverted) after each byte.
    inverted = [builder.not_(bit) for bit in current]
    builder.bus_store("crc", builder.word_from_bits(inverted))
    return builder.netlist


def build_popcount_pe(words: int = 4) -> Netlist:
    """Population count over ``words`` 32-bit words per invocation.

    Bits reduce pairwise through small gate-level adders (1-bit ->
    2-bit -> ... counters), then the per-word counts accumulate on the
    MAC — a typical LUT+MAC mixed datapath.
    """
    builder = CircuitBuilder("popcount")
    total = builder.const_word(0)
    zero = builder.const_bit(0)
    for _ in range(words):
        word = builder.bus_load("data")
        # Reduce 32 single-bit values by summing adjacent groups with
        # progressively wider ripple adders.
        groups: List[List[int]] = [[bit] for bit in word.bits]
        while len(groups) > 1:
            merged: List[List[int]] = []
            for index in range(0, len(groups) - 1, 2):
                a, b = groups[index], groups[index + 1]
                width = max(len(a), len(b))
                a = a + [zero] * (width - len(a))
                b = b + [zero] * (width - len(b))
                total_bits, carry = builder.add_vec(a, b)
                merged.append(total_bits + [carry])
            if len(groups) % 2:
                merged.append(groups[-1])
            groups = merged
        count = builder.word_from_bits(groups[0])
        total = builder.add_words_mac(count, total)
    builder.bus_store("count", total)
    return builder.netlist
