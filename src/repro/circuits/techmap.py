"""Technology mapping: cover the gate-level region with K-input LUTs.

This module stands in for the paper's VTR logic-synthesis step
(Sec. IV: "we use the open-source VTR toolchain to perform logic
synthesis and technology mapping, in order to map the circuit into a
netlist of look-up tables, flip-flops, adders, and multipliers").

Two passes:

1. **Shannon decomposition** — arbitrary-arity LUTs written by the
   benchmark generators (e.g. the 8-input AES S-box bit functions) are
   cofactored into a mux tree of K-input LUTs.
2. **Priority-cut covering** — classic depth-oriented cut enumeration
   (a small-C variant of the algorithm used by ABC/VTR): every gate or
   narrow-LUT node accumulates a bounded set of K-feasible cuts ranked
   by (depth, size); the cover phase walks from the required bit roots
   and materialises one LUT per chosen cut, with the cut's truth table
   computed by cone evaluation.

The result preserves function exactly — property-tested against random
gate networks in ``tests/circuits/test_techmap.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import SynthesisError
from .netlist import GateOp, Netlist, NodeKind, gate_truth_table

# How many cuts to keep per node.  Small values trade mapping quality
# for speed; 6 is plenty for the arithmetic/logic cones we build.
CUT_LIMIT = 6

_MAPPABLE = (NodeKind.GATE, NodeKind.LUT)


@dataclass
class TechMapResult:
    """A mapped netlist plus mapping statistics."""

    netlist: Netlist
    lut_count: int
    depth: int
    node_map: Dict[int, int] = field(repr=False, default_factory=dict)

    def counts(self) -> Dict[str, int]:
        return self.netlist.counts()


# ---------------------------------------------------------------------------
# Pass 1: Shannon decomposition of wide LUTs
# ---------------------------------------------------------------------------

def _decompose_table(
    netlist: Netlist, fanins: Sequence[int], table: int, k: int
) -> int:
    """Emit a ≤k-input realisation of (fanins, table) into ``netlist``."""
    width = len(fanins)
    size = 1 << width
    mask = (1 << size) - 1
    table &= mask
    if table == 0:
        return netlist.add(NodeKind.CONST, (), 0)
    if table == mask:
        return netlist.add(NodeKind.CONST, (), 1)
    if width <= k:
        return netlist.add(NodeKind.LUT, fanins, (width, table))
    half = 1 << (width - 1)
    low = table & ((1 << half) - 1)
    high = table >> half
    select = fanins[-1]
    rest = fanins[:-1]
    if low == high:
        return _decompose_table(netlist, rest, low, k)
    low_nid = _decompose_table(netlist, rest, low, k)
    high_nid = _decompose_table(netlist, rest, high, k)
    return netlist.add(NodeKind.GATE, (select, low_nid, high_nid), GateOp.MUX)


def decompose_wide_luts(netlist: Netlist, k: int) -> Tuple[Netlist, Dict[int, int]]:
    """Rewrite so every LUT has at most ``k`` inputs."""
    result = Netlist(netlist.name)
    remap: Dict[int, int] = {}
    ff_bindings: List[Tuple[int, int]] = []  # (new ff id, old driver id)
    for nid in netlist.topo_order():
        node = netlist.nodes[nid]
        if node.kind is NodeKind.FLIPFLOP:
            # The next-state edge may point forward; re-bind afterwards.
            remap[nid] = result.add(NodeKind.FLIPFLOP, (), node.payload)
            if node.fanins:
                ff_bindings.append((remap[nid], node.fanins[0]))
            continue
        fanins = tuple(remap[f] for f in node.fanins)
        if node.kind is NodeKind.LUT and node.payload[0] > k:  # type: ignore[index]
            table = node.payload[1]  # type: ignore[index]
            remap[nid] = _decompose_table(result, fanins, table, k)
        else:
            remap[nid] = result.add(node.kind, fanins, node.payload)
    for new_ff, old_driver in ff_bindings:
        result.bind_flipflop(new_ff, remap[old_driver])
    for name, out in netlist.outputs.items():
        result.set_output(name, remap[out])
    return result, remap


# ---------------------------------------------------------------------------
# Pass 2: priority-cut mapping
# ---------------------------------------------------------------------------

Cut = FrozenSet[int]


def _merge_cut_lists(
    lists: Sequence[List[Cut]],
    arrivals: Dict[int, int],
    k: int,
) -> List[Cut]:
    """Fold the fanins' cut lists into K-feasible merged cuts."""
    merged: List[Cut] = [frozenset()]
    for cuts in lists:
        next_merged: List[Cut] = []
        seen = set()
        for base in merged:
            for cut in cuts:
                union = base | cut
                if len(union) > k or union in seen:
                    continue
                seen.add(union)
                next_merged.append(union)
        next_merged = _prune(next_merged, arrivals)
        if not next_merged:
            return []
        merged = next_merged
    return merged


def _cut_depth(cut: Cut, arrivals: Dict[int, int]) -> int:
    return 1 + max((arrivals.get(leaf, 0) for leaf in cut), default=0)


def _prune(cuts: List[Cut], arrivals: Dict[int, int]) -> List[Cut]:
    unique = list(dict.fromkeys(cuts))
    unique.sort(key=lambda cut: (_cut_depth(cut, arrivals), len(cut)))
    return unique[:CUT_LIMIT]


def _cone_function(
    netlist: Netlist, root: int, leaves: Tuple[int, ...]
) -> int:
    """Truth table of the cone rooted at ``root`` over ``leaves``."""
    positions = {leaf: index for index, leaf in enumerate(leaves)}
    table = 0
    for assignment in range(1 << len(leaves)):
        memo: Dict[int, int] = {
            leaf: (assignment >> index) & 1 for leaf, index in positions.items()
        }

        def eval_node(nid: int) -> int:
            if nid in memo:
                return memo[nid]
            node = netlist.nodes[nid]
            if node.kind is NodeKind.CONST:
                value = node.payload
            elif node.kind is NodeKind.GATE:
                arity, gate_table = gate_truth_table(
                    node.payload  # type: ignore[arg-type]
                )
                index = 0
                for position, fanin in enumerate(node.fanins):
                    index |= eval_node(fanin) << position
                value = (gate_table >> index) & 1
            elif node.kind is NodeKind.LUT:
                _, lut_table = node.payload  # type: ignore[misc]
                index = 0
                for position, fanin in enumerate(node.fanins):
                    index |= eval_node(fanin) << position
                value = (lut_table >> index) & 1
            else:
                raise SynthesisError(
                    f"cone evaluation crossed a non-logic node {node.kind}"
                )
            memo[nid] = value
            return value

        table |= eval_node(root) << assignment
    return table


def technology_map(netlist: Netlist, k: int = 5) -> TechMapResult:
    """Map all gate/LUT logic in ``netlist`` into K-input LUTs."""
    if k < 2:
        raise SynthesisError("LUTs need at least 2 inputs")
    work, _ = decompose_wide_luts(netlist, k)

    mappable = [node.kind in _MAPPABLE for node in work.nodes]
    # CONST nodes can be absorbed into cones as zero-arity leaves; they
    # are treated as region leaves with arrival 0.
    cuts: Dict[int, List[Cut]] = {}
    arrivals: Dict[int, int] = {}

    for nid in work.topo_order():
        if not mappable[nid]:
            continue
        node = work.nodes[nid]
        fanin_lists: List[List[Cut]] = []
        for fanin in node.fanins:
            if mappable[fanin]:
                fanin_lists.append(cuts[fanin])
            else:
                fanin_lists.append([frozenset((fanin,))])
        merged = _merge_cut_lists(fanin_lists, arrivals, k)
        if not merged:
            # All merged cuts exceeded k inputs; fall back to the
            # node's own fanins as a cut (always feasible because a
            # single gate/LUT has at most k inputs after decomposition).
            merged = [frozenset(node.fanins)]
        arrivals[nid] = _cut_depth(merged[0], arrivals)
        cuts[nid] = _prune(merged + [frozenset((nid,))], arrivals)

    # ------------------------------------------------------------------
    # Cover from the required bit roots.
    # ------------------------------------------------------------------
    required: List[int] = []
    seen_required = set()

    def require(nid: int) -> None:
        if mappable[nid] and nid not in seen_required:
            seen_required.add(nid)
            required.append(nid)

    for node in work.nodes:
        if node.kind in _MAPPABLE:
            continue
        for fanin in node.fanins:
            require(fanin)
    for out in work.outputs.values():
        require(out)

    # Choose a cut for each required node, requiring its mappable leaves.
    chosen: Dict[int, Tuple[int, ...]] = {}
    index = 0
    while index < len(required):
        nid = required[index]
        index += 1
        best: Optional[Cut] = None
        for cut in cuts[nid]:
            if cut == frozenset((nid,)):
                continue
            if best is None or (
                (_cut_depth(cut, arrivals), len(cut))
                < (_cut_depth(best, arrivals), len(best))
            ):
                best = cut
        if best is None:
            raise SynthesisError(f"no non-trivial cut for node {nid}")
        leaves = tuple(sorted(best))
        chosen[nid] = leaves
        for leaf in leaves:
            require(leaf)

    # ------------------------------------------------------------------
    # Emit the mapped netlist in topological order.
    # ------------------------------------------------------------------
    mapped = Netlist(netlist.name)
    remap: Dict[int, int] = {}
    ff_bindings: List[Tuple[int, int]] = []
    for nid in work.topo_order():
        node = work.nodes[nid]
        if node.kind is NodeKind.FLIPFLOP:
            remap[nid] = mapped.add(NodeKind.FLIPFLOP, (), node.payload)
            if node.fanins:
                ff_bindings.append((remap[nid], node.fanins[0]))
            continue
        if mappable[nid]:
            if nid not in chosen:
                continue  # internal to some cone
            leaves = chosen[nid]
            table = _cone_function(work, nid, leaves)
            size = 1 << len(leaves)
            mask = (1 << size) - 1
            if (table & mask) == 0:
                remap[nid] = mapped.add(NodeKind.CONST, (), 0)
            elif (table & mask) == mask:
                remap[nid] = mapped.add(NodeKind.CONST, (), 1)
            elif len(leaves) == 1 and table == 0b10:
                remap[nid] = remap[leaves[0]]  # buffer: alias the leaf
            else:
                remap[nid] = mapped.add(
                    NodeKind.LUT,
                    tuple(remap[leaf] for leaf in leaves),
                    (len(leaves), table & mask),
                )
        else:
            remap[nid] = mapped.add(
                node.kind, tuple(remap[f] for f in node.fanins), node.payload
            )
    for new_ff, old_driver in ff_bindings:
        mapped.bind_flipflop(new_ff, remap[old_driver])
    for name, out in work.outputs.items():
        mapped.set_output(name, remap[out])

    lut_count = sum(1 for node in mapped.nodes if node.kind is NodeKind.LUT)
    depth = max(arrivals.values(), default=0)
    return TechMapResult(netlist=mapped, lut_count=lut_count, depth=depth,
                         node_map=remap)
