"""Circuit IR, gate-level construction, and K-LUT technology mapping.

This package replaces the paper's Vivado-HLS + VTR synthesis flow
(Sec. IV, Fig. 7b).  Benchmark processing elements are built as
gate-level netlists with word-level MAC and bus-access nodes, then
technology-mapped into K-input LUTs — producing exactly the node mix
the folding scheduler consumes: "look-up tables, flip-flops, adders,
and multipliers".
"""

from .netlist import Netlist, Node, NodeKind, GateOp
from .builder import CircuitBuilder, Word
from .simulate import simulate
from .techmap import technology_map, TechMapResult
from .level import LeveledGraph, level_graph

__all__ = [
    "Netlist",
    "Node",
    "NodeKind",
    "GateOp",
    "CircuitBuilder",
    "Word",
    "simulate",
    "technology_map",
    "TechMapResult",
    "LeveledGraph",
    "level_graph",
]
