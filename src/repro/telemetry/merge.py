"""Cross-process telemetry stitching for the sharded gateway.

Each shard process owns a private :class:`~repro.telemetry.Telemetry`
whose tracer timestamps are ``time.perf_counter()`` values — they are
meaningless outside that process (the perf_counter epoch is arbitrary
per process).  To merge shard traces the shard first *rebases* its
spans onto the unix-epoch wall clock (:func:`spans_snapshot`), ships
the plain dicts over the gateway pipe, and the gateway folds every
shard's spans into one Chrome trace (:func:`merge_chrome_trace`) with
one trace *process* per shard — Perfetto then shows the fleet's
timelines stacked and time-aligned.

Metric snapshots merge by a different rule (:func:`merge_metrics`):
counter/gauge series gain a ``shard`` label and are kept per-shard,
while histogram count/sum aggregate into a fleet total.  Percentiles
are *not* merged — a p95 cannot be combined across reservoirs — so
merged histogram entries carry the per-shard percentiles under
``shards`` and only count/sum at the fleet level.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence

from .core import Telemetry
from .export import _jsonable

#: pid 0 is the gateway process itself in a merged trace; shard ``i``
#: renders as pid ``SHARD_PID_BASE + i``.
SHARD_PID_BASE = 10


def wall_offset_s() -> float:
    """The additive term turning ``perf_counter()`` readings into
    unix-epoch seconds *in this process*."""
    return time.time() - time.perf_counter()


def spans_snapshot(telemetry: Telemetry) -> List[Dict]:
    """This process's spans as plain dicts on the unix-epoch clock.

    The returned dicts are the wire format carried by
    :class:`repro.gateway.protocol.StatsReplyMsg` — JSON/pickle safe,
    no process-local timestamps.
    """
    offset = wall_offset_s()
    spans = []
    for span in telemetry.tracer.spans:
        spans.append({
            "name": span.name,
            "category": span.category,
            "thread": span.thread,
            "start_unix_s": span.start_s + offset,
            "end_unix_s": span.end_s + offset,
            "args": {k: _jsonable(v) for k, v in span.attrs.items()},
        })
    return spans


def merge_chrome_trace(
    shard_spans: Mapping[int, Sequence[Dict]],
    gateway_telemetry: Optional[Telemetry] = None,
) -> Dict:
    """Fold per-shard span snapshots into one Chrome trace dict.

    ``shard_spans`` maps shard id -> :func:`spans_snapshot` output.
    Every shard becomes its own trace process (``shard0``, ``shard1``,
    ...); the gateway's own spans, if provided, become process
    ``gateway`` at pid 0.  Timestamps are rebased so the earliest
    span across the fleet sits at t=0.
    """
    groups: List[Dict] = []
    if gateway_telemetry is not None:
        groups.append({
            "pid": 0,
            "label": "gateway",
            "spans": spans_snapshot(gateway_telemetry),
        })
    for shard_id in sorted(shard_spans):
        groups.append({
            "pid": SHARD_PID_BASE + shard_id,
            "label": f"shard{shard_id}",
            "spans": list(shard_spans[shard_id]),
        })

    origin = min(
        (s["start_unix_s"] for g in groups for s in g["spans"]),
        default=0.0,
    )

    events: List[Dict] = []
    total = 0
    for group in groups:
        events.append({
            "ph": "M", "pid": group["pid"], "tid": 0,
            "name": "process_name", "args": {"name": group["label"]},
        })
        thread_ids: Dict[int, int] = {}
        for span in group["spans"]:
            tid = thread_ids.setdefault(span.get("thread", 0),
                                        len(thread_ids))
            events.append({
                "ph": "X",
                "pid": group["pid"],
                "tid": tid,
                "name": span["name"],
                "cat": span.get("category") or "span",
                "ts": (span["start_unix_s"] - origin) * 1e6,
                "dur": (span["end_unix_s"] - span["start_unix_s"]) * 1e6,
                "args": dict(span.get("args", {})),
            })
            total += 1

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "processes": len(groups),
            "spans": total,
        },
    }


def merge_metrics(shard_metrics: Mapping[int, Dict]) -> Dict:
    """Fold per-shard ``MetricRegistry.snapshot()`` dumps together.

    Counters and gauges keep one series per shard, each label set
    extended with ``shard``.  Histograms aggregate ``count``/``sum``
    fleet-wide and retain the per-shard entries (with their
    percentiles) under ``shards``.
    """
    merged: Dict[str, Dict] = {}
    for shard_id in sorted(shard_metrics):
        for name, metric in shard_metrics[shard_id].items():
            kind = metric.get("kind", "counter")
            entry = merged.setdefault(name, {"kind": kind, "series": []})
            if kind == "histogram":
                for series in metric.get("series", []):
                    labels = dict(series.get("labels", {}))
                    key = tuple(sorted(labels.items()))
                    slot = next(
                        (s for s in entry["series"]
                         if tuple(sorted(s["labels"].items())) == key),
                        None,
                    )
                    if slot is None:
                        slot = {"labels": labels, "count": 0,
                                "sum": 0.0, "shards": []}
                        entry["series"].append(slot)
                    slot["count"] += series.get("count", 0)
                    slot["sum"] += series.get("sum", 0.0)
                    slot["shards"].append({
                        "shard": shard_id,
                        "count": series.get("count", 0),
                        "sum": series.get("sum", 0.0),
                        "p50": series.get("p50"),
                        "p95": series.get("p95"),
                    })
            else:
                for series in metric.get("series", []):
                    labels = dict(series.get("labels", {}))
                    labels["shard"] = str(shard_id)
                    entry["series"].append({
                        "labels": labels,
                        "value": series.get("value"),
                    })
    return merged
