"""``freac trace`` / ``freac metrics``: telemetry-enabled CLI runs.

Both commands push one (or more) jobs of a benchmark through a fresh
:class:`~repro.service.service.AcceleratorService` wired to a live
:class:`~repro.telemetry.Telemetry` instance, then export what the
instrumented stack recorded:

* ``freac trace BENCH`` writes a Chrome ``trace_event`` JSON — load it
  at https://ui.perfetto.dev or ``chrome://tracing`` to see the job /
  wave / device-phase spans over wall time and the per-tile folding
  steps over simulated device cycles (docs/observability.md);
* ``freac metrics BENCH`` prints the metric registry as a
  human-readable summary, Prometheus text exposition, or JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Tuple

from ..errors import ReproError
from .core import Telemetry
from .export import to_chrome_trace, to_prometheus, to_summary

# The suite uses short canonical names (CONV, GEMM, ...); accept the
# long forms people type at a prompt.
_ALIASES = {"CONV2D": "CONV", "MATMUL": "GEMM"}

# Span/event names the instrumented stack must produce for any
# successful service run; an export missing one is a telemetry bug.
REQUIRED_SPANS = ("job", "service.wave", "device.program")
REQUIRED_EVENTS = ("fold_step",)


def canonical_benchmark(name: str) -> str:
    upper = name.upper()
    return _ALIASES.get(upper, upper)


def traced_run(args: argparse.Namespace) -> Tuple[Telemetry, bool]:
    """Run the requested jobs against a telemetry-enabled service.

    Returns the populated telemetry and whether every job completed
    verified.  Raises :class:`~repro.errors.ReproError` subclasses for
    unknown benchmarks and device failures, like ``freac submit``.
    """
    from ..freac.compute_slice import SlicePartition
    from ..params import scaled_system
    from ..request import RunRequest
    from ..service.service import AcceleratorService

    request = RunRequest.from_args(args, telemetry=True)
    telemetry = Telemetry(seed=request.seed, max_trace_events=args.max_events)
    service = AcceleratorService(
        devices=args.devices,
        system=scaled_system(l3_slices=args.device_slices),
        partition=SlicePartition(compute_ways=4, scratchpad_ways=4),
        telemetry=telemetry,
    )
    benchmark = canonical_benchmark(request.benchmark)
    ok = True
    try:
        jobs = [
            service.submit_request(
                request.replace(benchmark=benchmark,
                                seed=request.seed + index)
            )
            for index in range(args.jobs)
        ]
        for job in jobs:
            result = service.result(job)
            ok = ok and bool(result.verified)
    finally:
        service.close()
    return telemetry, ok


def validate_chrome_trace(document: object) -> List[str]:
    """Problems that would make a trace useless in Perfetto ([] = ok)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"top level is {type(document).__name__}, expected object"]
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents is empty or missing"]
    names = {
        event.get("name") for event in events
        if isinstance(event, dict) and event.get("ph") in ("X", "i")
    }
    for span in REQUIRED_SPANS:
        if span not in names:
            problems.append(f"no {span!r} span in traceEvents")
    for event in REQUIRED_EVENTS:
        if event not in names:
            problems.append(f"no {event!r} cycle event in traceEvents")
    return problems


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a benchmark and write a Perfetto-loadable Chrome trace."""
    try:
        telemetry, verified = traced_run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    out = args.out or f"trace-{canonical_benchmark(args.benchmark).lower()}.json"
    document = to_chrome_trace(telemetry)
    with open(out, "w") as handle:
        json.dump(document, handle, indent=None, separators=(",", ":"))

    # Validate what actually landed on disk, not the in-memory dict.
    try:
        with open(out) as handle:
            problems = validate_chrome_trace(json.load(handle))
    except ValueError as exc:
        problems = [f"not parsable as JSON: {exc}"]
    tracer = telemetry.tracer
    print(f"trace written : {out}")
    print(f"wall spans    : {len(tracer.spans)}")
    print(f"cycle events  : {len(tracer.cycle_events)}"
          + (f" ({tracer.dropped} dropped)" if tracer.dropped else ""))
    print("load it at    : https://ui.perfetto.dev (or chrome://tracing)")
    for problem in problems:
        print(f"invalid trace : {problem}", file=sys.stderr)
    if not verified:
        print("warning: some jobs did not verify", file=sys.stderr)
    return 1 if (problems or not verified) else 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run a benchmark and print the metric registry."""
    try:
        telemetry, verified = traced_run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "prom":
        text = to_prometheus(telemetry)
    elif args.format == "json":
        text = json.dumps(telemetry.metrics.snapshot(), indent=2,
                          sort_keys=True)
    else:
        text = to_summary(telemetry)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"metrics written to {args.out}")
    else:
        print(text)
    return 0 if verified else 1


def add_parsers(sub: "argparse._SubParsersAction") -> None:
    """Register ``trace`` and ``metrics`` on the ``freac`` CLI."""

    def common(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("benchmark")
        parser.add_argument("--items", type=int, default=4,
                            help="items per job")
        parser.add_argument("--jobs", type=int, default=1,
                            help="jobs to submit (same benchmark)")
        parser.add_argument("--tile", type=int, default=1,
                            help="MCCs per accelerator tile")
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument("--devices", type=int, default=1,
                            help="FReaC devices in the pool")
        parser.add_argument("--device-slices", type=int, default=2,
                            help="LLC slices per device")
        parser.add_argument("--max-events", type=int, default=200_000,
                            help="tracer event budget before dropping")
        from ..freac.engine import ENGINES

        parser.add_argument("--engine", choices=ENGINES, default=None,
                            help="execution engine (default: vectorized)")

    trace = sub.add_parser(
        "trace", help="run a benchmark and write a Chrome/Perfetto trace"
    )
    common(trace)
    trace.add_argument("--out", default=None,
                       help="trace path (default trace-<bench>.json)")

    metrics = sub.add_parser(
        "metrics", help="run a benchmark and print its telemetry metrics"
    )
    common(metrics)
    metrics.add_argument("--format", choices=("summary", "prom", "json"),
                         default="summary")
    metrics.add_argument("--out", default=None,
                         help="write instead of printing to stdout")
