"""Metric primitives: counters, gauges, histograms, and the registry.

All metrics are multi-series: one metric name owns any number of
label sets (``counter.inc(slice=3)`` and ``counter.inc(slice=4)`` are
two series of the same counter), mirroring the Prometheus data model
so the text exposition in :mod:`repro.telemetry.export` is a direct
serialisation.

Histograms keep three views of the same observations: cumulative
buckets (for Prometheus), a running count/sum (for means), and a
bounded *deterministic* reservoir (for percentiles).  The reservoir is
Algorithm R under a seeded RNG, so two runs that observe the same
sequence retain the same sample — replayable percentiles with capped
memory.
"""

from __future__ import annotations

import bisect
import random
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Generic latency-in-seconds buckets; callers measuring something
#: else (hop counts, batch sizes) pass their own.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


def label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class Reservoir:
    """Bounded uniform sample of a stream (Vitter's Algorithm R).

    Deterministic under a fixed ``seed``: the retained sample depends
    only on the order and values of :meth:`add` calls, never on the
    wall clock — two identical runs report identical percentiles.
    """

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be at least one sample")
        self.capacity = capacity
        self.count = 0
        self._rng = random.Random(seed)
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self.count += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self._samples[slot] = value

    @property
    def sample_count(self) -> int:
        """Samples actually retained (<= :attr:`count`)."""
        return len(self._samples)

    def samples(self) -> List[float]:
        return list(self._samples)

    def percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank percentile of the retained sample."""
        if not self._samples:
            return None
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be within [0, 1]")
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(fraction * len(ordered)) - 1))
        return ordered[rank]


class Metric:
    """Shared name/help plumbing for every metric kind.

    Mutations are guarded by a per-metric lock: the read-modify-write
    of ``inc``/``add``/``observe`` would otherwise lose updates when
    the serving layer's worker threads share one registry.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._mutate = threading.Lock()

    def series(self) -> List[Tuple[Dict[str, str], object]]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing per-label-set count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = label_key(labels)
        with self._mutate:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label set."""
        with self._mutate:
            return sum(self._values.values())

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        with self._mutate:
            return [(dict(key), value) for key, value in self._values.items()]


class Gauge(Metric):
    """A point-in-time value that may move either way."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._mutate:
            self._values[label_key(labels)] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        key = label_key(labels)
        with self._mutate:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(label_key(labels), 0.0)

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        with self._mutate:
            return [(dict(key), value) for key, value in self._values.items()]


class _HistogramSeries:
    __slots__ = ("count", "sum", "bucket_counts", "reservoir")

    def __init__(self, buckets: Sequence[float], seed: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.bucket_counts = [0] * (len(buckets) + 1)  # trailing +Inf
        self.reservoir = Reservoir(seed=seed)


class Histogram(Metric):
    """Cumulative-bucket histogram with deterministic percentiles."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets if buckets is not None else DEFAULT_BUCKETS)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = bounds
        self._seed = seed
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def _get(self, labels: Dict[str, object]) -> _HistogramSeries:
        key = label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(
                self.buckets, self._seed
            )
        return series

    def observe(self, value: float, **labels: object) -> None:
        with self._mutate:
            series = self._get(labels)
            series.count += 1
            series.sum += value
            series.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
            series.reservoir.add(value)

    # -- per-label-set accessors (no labels = the unlabeled series) ----

    def count(self, **labels: object) -> int:
        series = self._series.get(label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(label_key(labels))
        return series.sum if series else 0.0

    def mean(self, **labels: object) -> Optional[float]:
        series = self._series.get(label_key(labels))
        if not series or not series.count:
            return None
        return series.sum / series.count

    def percentile(self, fraction: float, **labels: object) -> Optional[float]:
        series = self._series.get(label_key(labels))
        return series.reservoir.percentile(fraction) if series else None

    def series(self) -> List[Tuple[Dict[str, str], _HistogramSeries]]:
        return [(dict(key), series) for key, series in self._series.items()]


class MetricRegistry:
    """Get-or-create home of every metric, keyed by name.

    Re-requesting a name returns the existing instance; requesting it
    as a different kind is a programming error and raises.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, help, **kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, buckets=buckets, seed=self.seed
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-data dump of every metric (for JSON sidecars)."""
        out: Dict[str, Dict] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "kind": metric.kind,
                    "series": [
                        {
                            "labels": labels,
                            "count": series.count,
                            "sum": series.sum,
                            "p50": series.reservoir.percentile(0.50),
                            "p95": series.reservoir.percentile(0.95),
                        }
                        for labels, series in metric.series()
                    ],
                }
            else:
                out[metric.name] = {
                    "kind": metric.kind,
                    "series": [
                        {"labels": labels, "value": value}
                        for labels, value in metric.series()  # type: ignore[misc]
                    ],
                }
        return out
