"""Telemetry: metrics registry, span/cycle tracer, and exporters.

The observability layer of the reproduction (docs/observability.md).
A :class:`Telemetry` instance owns a :class:`MetricRegistry` of
counters/gauges/histograms and a :class:`Tracer` of wall-clock spans
plus simulated-cycle events.  Instrumented components — the cache
hierarchy, the folding executor and CC Ctrl, the workload runner, and
the serving layer — accept an optional ``telemetry=`` argument and
fall back to the process default, which is the no-op
:data:`NULL_TELEMETRY` unless :func:`set_telemetry` installed a live
one.  Exporters turn a populated instance into a Chrome
``trace_event`` JSON (Perfetto-loadable), a Prometheus text
exposition, or a human-readable summary.
"""

from .core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    resolve,
    set_telemetry,
    use_telemetry,
)
from .export import (
    to_chrome_trace,
    to_prometheus,
    to_summary,
    write_chrome_trace,
)
from .merge import (
    merge_chrome_trace,
    merge_metrics,
    spans_snapshot,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
    Reservoir,
)
from .trace import CycleEvent, SpanRecord, Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "resolve",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "Reservoir",
    "Tracer",
    "SpanRecord",
    "CycleEvent",
    "to_chrome_trace",
    "to_prometheus",
    "to_summary",
    "write_chrome_trace",
    "spans_snapshot",
    "merge_chrome_trace",
    "merge_metrics",
]
