"""The ``Telemetry`` facade: one object carrying metrics + tracer.

Instrumented code never imports concrete metric classes; it resolves a
:class:`Telemetry` (the injected one, else the process default) and
talks to it.  The process default is :data:`NULL_TELEMETRY`, a
subclass whose every operation is a no-op and whose :attr:`enabled`
flag is False — so hot paths can guard per-cycle work with a single
attribute check and cost ~nothing when nobody is watching::

    tel = resolve(telemetry)          # once, at construction
    ...
    if tel.enabled:                   # per cycle: one attribute load
        tel.cycle_event("fold_step", cycle, track=self.track)

Enabling telemetry for a region of code is either explicit injection
(``FreacDevice(telemetry=...)``, ``run_workload(telemetry=...)``) or
process-wide via :func:`set_telemetry` / the :func:`use_telemetry`
context manager.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import ContextManager, Iterator, Optional, Sequence

from .metrics import Counter, Gauge, Histogram, MetricRegistry
from .trace import Tracer


class Telemetry:
    """A live registry of metrics plus a span/cycle tracer."""

    enabled = True

    def __init__(self, *, max_trace_events: int = 200_000,
                 seed: int = 0) -> None:
        self.metrics = MetricRegistry(seed=seed)
        self.tracer = Tracer(max_events=max_trace_events)

    # -- metrics -------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self.metrics.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.metrics.gauge(name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self.metrics.histogram(name, help, buckets=buckets)

    # -- tracing -------------------------------------------------------

    def span(self, name: str, category: str = "",
             **attrs: object) -> ContextManager[None]:
        return self.tracer.span(name, category, **attrs)

    def record_span(self, name: str, start_s: float, end_s: float,
                    category: str = "", **attrs: object) -> None:
        self.tracer.record_span(name, start_s, end_s, category, **attrs)

    def cycle_event(self, name: str, cycle: int, track: str = "",
                    **attrs: object) -> None:
        self.tracer.cycle_event(name, cycle, track, **attrs)


class _NullContext:
    """A reusable, allocation-free context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


class _NullMetric:
    """Absorbs every metric operation; reports zeros."""

    __slots__ = ()

    def inc(self, amount: float = 1, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def add(self, amount: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0


_NULL_CONTEXT = _NullContext()
_NULL_METRIC = _NullMetric()


class NullTelemetry(Telemetry):
    """The disabled default: every operation is a cheap no-op."""

    enabled = False

    def __init__(self) -> None:
        # Deliberately no registry/tracer: nothing may accumulate.
        pass

    def counter(self, name: str, help: str = ""):  # type: ignore[override]
        return _NULL_METRIC

    def gauge(self, name: str, help: str = ""):  # type: ignore[override]
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "",  # type: ignore[override]
                  buckets: Optional[Sequence[float]] = None):
        return _NULL_METRIC

    def span(self, name: str, category: str = "",
             **attrs: object) -> ContextManager[None]:
        return _NULL_CONTEXT

    def record_span(self, name: str, start_s: float, end_s: float,
                    category: str = "", **attrs: object) -> None:
        pass

    def cycle_event(self, name: str, cycle: int, track: str = "",
                    **attrs: object) -> None:
        pass


#: The shared disabled instance every un-instrumented run uses.
NULL_TELEMETRY = NullTelemetry()

_default: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The process-wide default (``NULL_TELEMETRY`` unless set)."""
    return _default


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install a new process default; returns the previous one.

    ``None`` restores the disabled default.
    """
    global _default
    previous = _default
    _default = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Scoped :func:`set_telemetry`: restores the old default on exit."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)


def resolve(telemetry: Optional[Telemetry]) -> Telemetry:
    """The injection rule: explicit argument wins, else the default."""
    return telemetry if telemetry is not None else _default


__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "resolve",
]
