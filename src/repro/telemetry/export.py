"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, summary.

* :func:`to_chrome_trace` emits the Trace Event Format that Perfetto /
  ``chrome://tracing`` load.  Wall spans become complete (``"X"``)
  events under a ``wall`` process (one tid per host thread); simulated
  cycle events become instant (``"i"``) events under a
  ``device-cycles`` process (one tid per track, 1 device cycle = 1 µs
  on the viewer's axis).

* :func:`to_prometheus` emits the text exposition format — metric
  names sanitised to ``[a-zA-Z0-9_:]``, histograms as cumulative
  ``_bucket``/``_sum``/``_count`` families.

* :func:`to_summary` renders a human-readable digest: counters and
  gauges, histogram count/mean/p50/p95, and span totals by name.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from .core import Telemetry
from .metrics import Counter, Gauge, Histogram

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitised = _NAME_RE.sub("_", name)
    if not sanitised or sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(value)


# ---------------------------------------------------------------------------
# Chrome trace_event JSON
# ---------------------------------------------------------------------------

WALL_PID = 1
DEVICE_PID = 2


def to_chrome_trace(telemetry: Telemetry) -> Dict:
    """The whole trace as a Trace Event Format dict (JSON-ready)."""
    tracer = telemetry.tracer
    events: List[Dict] = [
        {"ph": "M", "pid": WALL_PID, "tid": 0, "name": "process_name",
         "args": {"name": "wall"}},
        {"ph": "M", "pid": DEVICE_PID, "tid": 0, "name": "process_name",
         "args": {"name": "device-cycles"}},
    ]

    thread_ids: Dict[int, int] = {}
    for span in tracer.spans:
        tid = thread_ids.setdefault(span.thread, len(thread_ids))
        events.append({
            "ph": "X",
            "pid": WALL_PID,
            "tid": tid,
            "name": span.name,
            "cat": span.category or "span",
            "ts": (span.start_s - tracer.epoch_s) * 1e6,
            "dur": span.duration_s * 1e6,
            "args": {k: _jsonable(v) for k, v in span.attrs.items()},
        })

    track_ids: Dict[str, int] = {}
    for event in tracer.cycle_events:
        track = event.track or "device"
        tid = track_ids.get(track)
        if tid is None:
            tid = track_ids[track] = len(track_ids)
            events.append({
                "ph": "M", "pid": DEVICE_PID, "tid": tid,
                "name": "thread_name", "args": {"name": track},
            })
        events.append({
            "ph": "i",
            "pid": DEVICE_PID,
            "tid": tid,
            "name": event.name,
            "cat": "cycle",
            "s": "t",
            "ts": float(event.cycle),
            "args": {k: _jsonable(v) for k, v in event.attrs.items()},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "spans": len(tracer.spans),
            "cycle_events": len(tracer.cycle_events),
            "dropped": tracer.dropped,
        },
    }


def write_chrome_trace(telemetry: Telemetry,
                       path: Union[str, Path]) -> Path:
    """Serialise :func:`to_chrome_trace` to ``path``; returns it."""
    destination = Path(path)
    destination.write_text(json.dumps(to_chrome_trace(telemetry)) + "\n")
    return destination


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def to_prometheus(telemetry: Telemetry) -> str:
    """Every metric in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in telemetry.metrics:
        name = _prom_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.series():
                lines.append(
                    f"{name}{_prom_labels(labels)} {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, series in metric.series():
                cumulative = 0
                for bound, count in zip(
                    metric.buckets, series.bucket_counts
                ):
                    cumulative += count
                    le = f'le="{_format_value(bound)}"'
                    lines.append(
                        f"{name}_bucket{_prom_labels(labels, le)} {cumulative}"
                    )
                cumulative += series.bucket_counts[-1]
                inf_label = _prom_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf_label} {cumulative}")
                lines.append(
                    f"{name}_sum{_prom_labels(labels)} {repr(series.sum)}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)} {series.count}"
                )
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# Human-readable summary
# ---------------------------------------------------------------------------

def to_summary(telemetry: Telemetry) -> str:
    """A terminal-friendly digest of metrics, spans, and events."""
    lines: List[str] = []

    counters = [m for m in telemetry.metrics if isinstance(m, Counter)]
    gauges = [m for m in telemetry.metrics if isinstance(m, Gauge)]
    histograms = [m for m in telemetry.metrics if isinstance(m, Histogram)]

    if counters or gauges:
        lines.append("== metrics ==")
        for metric in counters + gauges:
            for labels, value in metric.series():
                lines.append(
                    f"  {metric.name}{_label_suffix(labels)} = "
                    f"{_format_value(value)}"
                )
    if histograms:
        lines.append("== histograms ==")
        for metric in histograms:
            for labels, series in metric.series():
                mean = series.sum / series.count if series.count else 0.0
                p50 = series.reservoir.percentile(0.50)
                p95 = series.reservoir.percentile(0.95)
                lines.append(
                    f"  {metric.name}{_label_suffix(labels)}: "
                    f"n={series.count} mean={mean:.6g} "
                    f"p50={_opt(p50)} p95={_opt(p95)}"
                )

    totals = telemetry.tracer.span_totals()
    if totals:
        lines.append("== spans ==")
        for name in sorted(
            totals, key=lambda n: totals[n]["total_s"], reverse=True
        ):
            entry = totals[name]
            lines.append(
                f"  {name}: n={int(entry['count'])} "
                f"total={entry['total_s'] * 1e3:.3f}ms"
            )

    counts = telemetry.tracer.event_counts()
    if counts:
        lines.append("== cycle events ==")
        for name in sorted(counts):
            lines.append(f"  {name}: {counts[name]}")
    if telemetry.tracer.dropped:
        lines.append(f"== dropped {telemetry.tracer.dropped} trace records "
                     "(max_trace_events reached) ==")
    return "\n".join(lines) + "\n" if lines else "(no telemetry recorded)\n"


def _label_suffix(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _opt(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.6g}"
