"""Low-overhead tracing: wall-clock spans and simulated-cycle events.

Two timelines coexist:

* **Spans** measure host wall time with ``time.perf_counter()`` —
  phases like build/setup/program/execute and per-job end-to-end
  latency.  Spans may be recorded live (the :meth:`Tracer.span`
  context manager) or retroactively from timestamps already taken
  (:meth:`Tracer.record_span`), which is how the service layer turns
  its ``submitted_at``/``finished_at`` bookkeeping into trace rows.

* **Cycle events** sit on the simulated device timeline: one event per
  interesting device cycle (a folding step, a mid-run reconfiguration)
  on a named *track* (``slice0/tile3``).  The Chrome-trace exporter
  maps tracks to threads of a separate "device" process, so Perfetto
  shows wall phases and device activity side by side.

The tracer bounds its memory: past ``max_events`` total records, new
ones are counted in :attr:`Tracer.dropped` and discarded — a trace is
a diagnostic artifact, never a way to OOM the host.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass(frozen=True)
class SpanRecord:
    """One completed wall-time phase."""

    name: str
    start_s: float          # time.perf_counter() timestamps
    end_s: float
    category: str = ""
    thread: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class CycleEvent:
    """One instant on the simulated device-cycle timeline."""

    name: str
    cycle: int
    track: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Bounded collector of spans and cycle events."""

    def __init__(self, max_events: int = 200_000) -> None:
        self.max_events = max_events
        self.epoch_s = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self.cycle_events: List[CycleEvent] = []
        self.dropped = 0
        # Guards the record lists: worker threads of the serving layer
        # trace into one shared collector.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.spans) + len(self.cycle_events)

    @property
    def full(self) -> bool:
        return len(self) >= self.max_events

    def record_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        category: str = "",
        **attrs: object,
    ) -> None:
        """Record a phase from timestamps the caller already holds."""
        with self._lock:
            if self.full:
                self.dropped += 1
                return
            self.spans.append(
                SpanRecord(
                    name=name,
                    start_s=start_s,
                    end_s=end_s,
                    category=category,
                    thread=threading.get_ident(),
                    attrs=attrs,
                )
            )

    @contextmanager
    def span(self, name: str, category: str = "",
             **attrs: object) -> Iterator[None]:
        """Measure the enclosed block as one span (exception-safe)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_span(
                name, start, time.perf_counter(), category, **attrs
            )

    def cycle_event(self, name: str, cycle: int, track: str = "",
                    **attrs: object) -> None:
        with self._lock:
            if self.full:
                self.dropped += 1
                return
            self.cycle_events.append(CycleEvent(name, cycle, track, attrs))

    # -- aggregation helpers (summary exporter, tests) -----------------

    def span_totals(self) -> Dict[str, Dict[str, float]]:
        """Per span name: occurrence count and total duration."""
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            entry = totals.setdefault(span.name, {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += span.duration_s
        return totals

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.cycle_events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts
