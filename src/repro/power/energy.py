"""Dynamic energy and average power of FReaC accelerator runs.

The paper estimates FReaC power "by accounting for the number of reads
from the compute clusters and scratchpads", assuming switch-box links
at 100 % load consume ~9 mW each, and adding leakage (Sec. V-C).  This
model does the same arithmetic from the executor/timing counters:

* every folding step reads one config row per active LUT unit
  (sub-array access energy, Table II),
* every bus word is one scratchpad sub-array access plus bus movement,
* MAC and crossbar energies use standard 32 nm per-op estimates,
* link power applies only to tiles large enough to use switch boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..params import SubarrayParams

# Per-event energies (32 nm estimates; the sub-array number is the
# paper's published 3.69 pJ).
SUBARRAY_ACCESS_J = SubarrayParams().access_energy_j
MAC_OP_J = 3.0e-12
XBAR_TRAVERSAL_J = 0.5e-12
BUS_WORD_J = 1.0e-12

# Switch-box links: 9 mW per link at 100 % load (Sec. V-C).
LINK_POWER_W = 9.0e-3
LINKS_PER_SLICE = 40  # 28 switch boxes, X-Y segments between 8x4 tiles

# LLC leakage from McPAT (Sec. V): 1.125 W for the whole 10 MB LLC.
LLC_LEAKAGE_W = 1.125


@dataclass
class FreacEnergyBreakdown:
    """Joules by component plus the derived average power."""

    config_reads_j: float = 0.0
    scratchpad_j: float = 0.0
    mac_j: float = 0.0
    xbar_j: float = 0.0
    bus_j: float = 0.0
    links_j: float = 0.0
    leakage_j: float = 0.0

    @property
    def dynamic_j(self) -> float:
        return (
            self.config_reads_j
            + self.scratchpad_j
            + self.mac_j
            + self.xbar_j
            + self.bus_j
            + self.links_j
        )

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.leakage_j

    def average_power_w(self, seconds: float) -> float:
        if seconds <= 0:
            raise ValueError("need a positive duration for average power")
        return self.total_j / seconds

    def as_dict(self) -> Dict[str, float]:
        return {
            "config_reads_j": self.config_reads_j,
            "scratchpad_j": self.scratchpad_j,
            "mac_j": self.mac_j,
            "xbar_j": self.xbar_j,
            "bus_j": self.bus_j,
            "links_j": self.links_j,
            "leakage_j": self.leakage_j,
        }


@dataclass(frozen=True)
class EnergyModel:
    """Turns activity counts into a :class:`FreacEnergyBreakdown`."""

    subarray_access_j: float = SUBARRAY_ACCESS_J
    mac_op_j: float = MAC_OP_J
    xbar_traversal_j: float = XBAR_TRAVERSAL_J
    bus_word_j: float = BUS_WORD_J
    link_power_w: float = LINK_POWER_W
    links_per_slice: int = LINKS_PER_SLICE
    llc_leakage_w: float = LLC_LEAKAGE_W

    def accelerator_energy(
        self,
        *,
        lut_config_reads: int,
        mac_ops: int,
        bus_words: int,
        seconds: float,
        slices_active: int,
        uses_switch_fabric: bool,
        llc_slices: int = 8,
    ) -> FreacEnergyBreakdown:
        """Energy of a whole accelerated run.

        ``lut_config_reads`` is folding-step sub-array reads (one per
        active LUT unit per cycle); ``bus_words`` covers operand loads,
        stores, and spills, each of which is also one scratchpad
        sub-array access.
        """
        breakdown = FreacEnergyBreakdown(
            config_reads_j=lut_config_reads * self.subarray_access_j,
            scratchpad_j=bus_words * self.subarray_access_j,
            mac_j=mac_ops * self.mac_op_j,
            xbar_j=(lut_config_reads + mac_ops) * self.xbar_traversal_j,
            bus_j=bus_words * self.bus_word_j,
        )
        if uses_switch_fabric:
            breakdown.links_j = (
                self.link_power_w * self.links_per_slice * slices_active * seconds
            )
        # Leakage of the LLC portion devoted to the run scales with the
        # active slice share (the rest of the LLC leaks regardless of
        # FReaC and is charged to the host side of comparisons).
        breakdown.leakage_j = (
            self.llc_leakage_w * (slices_active / llc_slices) * seconds
        )
        return breakdown

    def reconfiguration_energy(
        self,
        *,
        flushed_bytes: int,
        config_words: int,
    ) -> float:
        """Energy of one elastic way transition or live reprogram.

        Flushing a dirty line out of a way being locked costs one
        sub-array read plus one bus word per 32-bit word written back
        (Fig. 5 step 2); streaming ``config_words`` of a (delta)
        bitstream into the sub-arrays costs one access plus one bus
        word each (step 4).  Unlocks are invalidations — tag updates
        the model treats as free.
        """
        flush_words = flushed_bytes // 4
        per_word = self.subarray_access_j + self.bus_word_j
        return (flush_words + config_words) * per_word
