"""Area overhead model (paper Sec. V-A).

Component areas come straight from the paper's RTL/DSENT estimates at
32 nm:

* 32-bit MAC unit ................ 1011 um^2
* 256 intermediate-value FFs ..... 1086 um^2
* operand crossbar ............... 1239 um^2
* 32x1 mux trees ................. 45 um^2
* per-cluster total .............. ~0.0034 mm^2
* global routing + links ......... 3469 um^2
* switch-box config memories ..... 0.35 mm^2 (one wide 8 KB per 4 MCCs)

32 clusters add ~0.109 mm^2 = 3.5 % of the 3.13 mm^2 slice; the full
switched fabric lands at 0.48 mm^2 = 15.3 %.  The switch-box logic
area itself is derived so the total matches the paper's 0.48 mm^2
roll-up (the paper reports only the total).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..params import SliceParams

UM2_TO_MM2 = 1e-6

# Published component areas (um^2).
MAC_AREA_UM2 = 1011.0
REGISTER_BANK_AREA_UM2 = 1086.0
OPERAND_XBAR_AREA_UM2 = 1239.0
MUX_TREES_AREA_UM2 = 45.0

# Switched-fabric constants (Sec. V-A).
GLOBAL_ROUTING_LINKS_UM2 = 3469.0
SWITCH_CONFIG_MEM_TOTAL_MM2 = 0.35
SWITCH_BOXES_PER_SLICE = 28          # 7 x 4 grid
MCCS_PER_CONFIG_MEM = 4
# Derived so that 0.109 + routing + config mems + boxes = 0.48 mm^2.
SWITCH_BOX_LOGIC_UM2 = 625.0


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area in mm^2 with convenience totals."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total_mm2(self) -> float:
        return sum(self.components.values())

    def overhead_fraction(self, slice_area_mm2: float) -> float:
        return self.total_mm2 / slice_area_mm2


@dataclass(frozen=True)
class ClusterAreaModel:
    """Area added per micro compute cluster."""

    mac_um2: float = MAC_AREA_UM2
    registers_um2: float = REGISTER_BANK_AREA_UM2
    xbar_um2: float = OPERAND_XBAR_AREA_UM2
    mux_trees_um2: float = MUX_TREES_AREA_UM2

    @property
    def per_cluster_um2(self) -> float:
        return self.mac_um2 + self.registers_um2 + self.xbar_um2 + self.mux_trees_um2

    @property
    def per_cluster_mm2(self) -> float:
        return self.per_cluster_um2 * UM2_TO_MM2

    def clusters(self, count: int) -> AreaBreakdown:
        return AreaBreakdown(
            {
                "mac_units": count * self.mac_um2 * UM2_TO_MM2,
                "register_banks": count * self.registers_um2 * UM2_TO_MM2,
                "operand_xbars": count * self.xbar_um2 * UM2_TO_MM2,
                "mux_trees": count * self.mux_trees_um2 * UM2_TO_MM2,
            }
        )


@dataclass(frozen=True)
class SwitchFabricAreaModel:
    """The optional inter-cluster routing for large accelerator tiles."""

    routing_links_um2: float = GLOBAL_ROUTING_LINKS_UM2
    switch_boxes: int = SWITCH_BOXES_PER_SLICE
    switch_box_logic_um2: float = SWITCH_BOX_LOGIC_UM2
    config_mem_total_mm2: float = SWITCH_CONFIG_MEM_TOTAL_MM2

    def fabric(self) -> AreaBreakdown:
        return AreaBreakdown(
            {
                "routing_links": self.routing_links_um2 * UM2_TO_MM2,
                "switch_boxes": (
                    self.switch_boxes * self.switch_box_logic_um2 * UM2_TO_MM2
                ),
                "switch_config_memories": self.config_mem_total_mm2,
            }
        )


def slice_overhead(
    clusters: int = 32,
    *,
    with_switch_fabric: bool = False,
    slice_params: SliceParams | None = None,
) -> AreaBreakdown:
    """Total FReaC area added to one LLC slice.

    ``clusters=32, with_switch_fabric=False`` reproduces the paper's
    basic mode (3.5 %); ``with_switch_fabric=True`` the large-tile mode
    (15.3 %).  Use ``AreaBreakdown.overhead_fraction`` with the slice
    area from Table II.
    """
    breakdown = dict(ClusterAreaModel().clusters(clusters).components)
    if with_switch_fabric:
        breakdown.update(SwitchFabricAreaModel().fabric().components)
    return AreaBreakdown(breakdown)
