"""Area, energy, and power models.

These replace the paper's use of CACTI 6.5, McPAT, DSENT, RTL
synthesis, and the Xilinx Power Estimator.  Rather than re-deriving
transistor-level numbers, each model is *seeded with the constants the
paper publishes* (Table II and Sec. V-A) and reproduces the roll-ups:
per-cluster area, the 3.5 % / 15.3 % slice overheads, access energies,
leakage, and link power.
"""

from .sram import SramModel, table2_rows
from .area import (
    AreaBreakdown,
    ClusterAreaModel,
    SwitchFabricAreaModel,
    slice_overhead,
)
from .energy import EnergyModel, FreacEnergyBreakdown
from .cpu_power import CpuPowerModel
from .wires import WireModel

__all__ = [
    "SramModel",
    "table2_rows",
    "AreaBreakdown",
    "ClusterAreaModel",
    "SwitchFabricAreaModel",
    "slice_overhead",
    "EnergyModel",
    "FreacEnergyBreakdown",
    "CpuPowerModel",
    "WireModel",
]
