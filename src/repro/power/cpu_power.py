"""Host CPU power model (McPAT stand-in, paper Sec. V).

The paper models the eight A15-class cores "via McPat with a 32nm
low-power library".  We use the standard decomposition McPAT itself
reports: per-core peak dynamic power scaled by activity, plus static
(leakage) power per core, plus shared uncore (interconnect + LLC
leakage).  Constants are chosen for a 32 nm low-power A15 at 4 GHz and
sanity-checked by the Fig. 12 power ratios (multi-core CPU draws
roughly twice the FReaC accelerator's power).
"""

from __future__ import annotations

from dataclasses import dataclass

from .energy import LLC_LEAKAGE_W


@dataclass(frozen=True)
class CpuPowerModel:
    """Activity-scaled core + uncore power."""

    core_dynamic_peak_w: float = 2.2   # one A15-class core at 4 GHz
    core_static_w: float = 0.15
    uncore_w: float = 0.8              # ring + memory controller
    llc_leakage_w: float = LLC_LEAKAGE_W

    def package_power_w(self, active_cores: int, activity: float = 0.85,
                        total_cores: int = 8) -> float:
        """Average package power with ``active_cores`` busy.

        ``activity`` is the dynamic-activity factor of busy cores;
        idle cores contribute static power only (clock-gated).
        """
        if not 0 <= active_cores <= total_cores:
            raise ValueError("active cores out of range")
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity factor must be in [0, 1]")
        dynamic = active_cores * self.core_dynamic_peak_w * activity
        static = total_cores * self.core_static_w
        return dynamic + static + self.uncore_w + self.llc_leakage_w

    def single_thread_power_w(self) -> float:
        return self.package_power_w(active_cores=1)

    def all_cores_power_w(self, total_cores: int = 8) -> float:
        return self.package_power_w(active_cores=total_cores,
                                    total_cores=total_cores)

    def energy_j(self, active_cores: int, seconds: float,
                 activity: float = 0.85, total_cores: int = 8) -> float:
        return self.package_power_w(active_cores, activity, total_cores) * seconds
