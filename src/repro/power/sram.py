"""CACTI-style SRAM sub-array model (paper Table II, 32 nm).

A thin analytical model anchored at the paper's published 8 KB
sub-array point (0.136 x 0.096 mm, 0.12 ns, 3.69 pJ/access) and scaled
with the usual first-order CACTI relationships: area grows linearly
with capacity, access time and energy with the square root of capacity
(wordline/bitline lengths grow with the array edge).

Only the anchor point is used by the headline experiments; the scaling
exists for the ablations (different sub-array sizes) and is clearly a
model, not a transistor-level extraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..params import SliceParams, SubarrayParams
from ..units import kib


# The paper's anchor sub-array (Table II).
_ANCHOR_BYTES = kib(8)
_ANCHOR_ACCESS_S = 0.12e-9
_ANCHOR_ENERGY_J = 0.00369e-9
_ANCHOR_WIDTH_MM = 0.136
_ANCHOR_HEIGHT_MM = 0.096


@dataclass(frozen=True)
class SramModel:
    """Area / timing / energy of an SRAM sub-array of a given size."""

    size_bytes: int = _ANCHOR_BYTES
    technology_nm: float = 32.0

    def _capacity_ratio(self) -> float:
        return self.size_bytes / _ANCHOR_BYTES

    def _tech_ratio(self) -> float:
        # First-order constant-field scaling relative to the 32 nm anchor.
        return self.technology_nm / 32.0

    @property
    def area_mm2(self) -> float:
        return (
            _ANCHOR_WIDTH_MM
            * _ANCHOR_HEIGHT_MM
            * self._capacity_ratio()
            * self._tech_ratio() ** 2
        )

    @property
    def access_time_s(self) -> float:
        return _ANCHOR_ACCESS_S * math.sqrt(self._capacity_ratio()) * self._tech_ratio()

    @property
    def access_energy_j(self) -> float:
        return (
            _ANCHOR_ENERGY_J
            * math.sqrt(self._capacity_ratio())
            * self._tech_ratio() ** 2
        )

    def as_subarray_params(self, port_bits: int = 32) -> SubarrayParams:
        """Materialise the model point as simulator parameters."""
        # Preserve the anchor's aspect ratio when scaling.
        scale = math.sqrt(self._capacity_ratio()) * self._tech_ratio()
        return SubarrayParams(
            size_bytes=self.size_bytes,
            port_bits=port_bits,
            access_time_s=self.access_time_s,
            access_energy_j=self.access_energy_j,
            width_mm=_ANCHOR_WIDTH_MM * scale,
            height_mm=_ANCHOR_HEIGHT_MM * scale,
        )

    def supports_single_cycle_at(self, clock_hz: float) -> bool:
        """Can the array be read every cycle at ``clock_hz``?

        This is the property FReaC Cache's per-cycle reconfiguration
        rests on: "the latency of reading a single word from a
        subarray allows us to perform one read per cycle" (Sec. V).
        """
        return self.access_time_s <= 1.0 / clock_hz


def table2_rows(slice_params: SliceParams | None = None) -> List[Tuple[str, str]]:
    """Render the paper's Table II from the models."""
    params = slice_params or SliceParams()
    model = SramModel(size_bytes=params.subarray.size_bytes)
    return [
        ("SRAM Subarray Size", f"{params.subarray.size_bytes // 1024}KB"),
        (
            "SRAM Subarray Dimensions",
            f"{model.as_subarray_params().width_mm:.3f} X "
            f"{model.as_subarray_params().height_mm:.3f}mm",
        ),
        ("SRAM Subarray AccessTime", f"{model.access_time_s * 1e9:.2f}ns"),
        ("SRAM Subarray AccessEnergy", f"{model.access_energy_j * 1e9:.5f}nJ"),
        (
            "L3 Cache Slice Size",
            f"{params.capacity_bytes / (1024 * 1024):.2f}MB",
        ),
        ("L3 Cache Slice Height", f"{params.height_mm:.2f}mm"),
        ("L3 Cache Slice Width", f"{params.width_mm:.2f}mm"),
        ("L3 Cache Slice Data Subarrays", str(params.subarray_count)),
    ]
