"""Wire delay/area model for the inter-cluster switch fabric.

Stands in for the paper's DSENT + CACTI wire analysis (Sec. V-A):
"The longest path possible is the Manhattan distance between two
switches at opposite corners of the slice.  We found this to be
2.864mm, based on the geometry of the cache slice and subarrays,
which must be completed over 10 links between the switches, and must
meet a delay of 0.3 ns to complete within a cycle."

The model derives the worst-case path from the slice geometry, applies
a repeated-wire delay per mm (a standard 32 nm global-wire figure),
and answers the question the paper swept frequency over: at which
clock does the switched fabric close timing?  With the defaults it
reproduces the paper's conclusion — 3 GHz closes, 4 GHz does not —
and the 32-bit link area total of 3469 um^2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import SliceParams

# Repeated global wire at 32 nm: ~100 ps/mm (DSENT-class figure).
WIRE_DELAY_PS_PER_MM = 100.0
# Per-link switch traversal (arbitration + drive), ps.
SWITCH_TRAVERSAL_PS = 1.5
# Link energy per bit per mm (repeated wire, 32 nm).
WIRE_ENERGY_FJ_PER_BIT_MM = 120.0

LINK_BITS = 32
LINKS_ON_LONGEST_PATH = 10


@dataclass(frozen=True)
class WireModel:
    """Worst-case path timing/area/energy over the switch fabric."""

    slice_params: SliceParams = None  # type: ignore[assignment]
    delay_ps_per_mm: float = WIRE_DELAY_PS_PER_MM
    switch_traversal_ps: float = SWITCH_TRAVERSAL_PS
    links: int = LINKS_ON_LONGEST_PATH
    link_bits: int = LINK_BITS

    def __post_init__(self) -> None:
        if self.slice_params is None:
            object.__setattr__(self, "slice_params", SliceParams())

    @property
    def longest_path_mm(self) -> float:
        """Manhattan distance between opposite slice corners, minus the
        control-box column the switches skirt."""
        params = self.slice_params
        # The switch grid spans the data-array area: the full height
        # minus the central control-box row (~1.5 sub-array heights)
        # plus the width minus the corner data arrays the route starts
        # and ends inside (4 sub-array widths).  With Table II's
        # geometry this lands on the paper's 2.864 mm.
        height = params.height_mm - 1.5 * params.subarray.height_mm
        return height + params.width_mm - params.subarray.width_mm * 4

    @property
    def worst_path_delay_s(self) -> float:
        wire = self.longest_path_mm * self.delay_ps_per_mm
        switches = self.links * self.switch_traversal_ps
        return (wire + switches) * 1e-12

    def meets_timing_at(self, clock_hz: float) -> bool:
        return self.worst_path_delay_s <= 1.0 / clock_hz

    def max_clock_hz(self) -> float:
        return 1.0 / self.worst_path_delay_s

    # ------------------------------------------------------------------

    def link_length_mm(self) -> float:
        return self.longest_path_mm / self.links

    def path_energy_j(self, bits: int | None = None) -> float:
        """Energy to move one flit across the worst-case path."""
        bits = bits if bits is not None else self.link_bits
        return (
            bits
            * self.longest_path_mm
            * WIRE_ENERGY_FJ_PER_BIT_MM
            * 1e-15
        )
