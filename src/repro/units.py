"""Unit helpers used throughout the reproduction.

All internal models keep quantities in SI base units (seconds, joules,
square metres, bytes, hertz).  These helpers exist so parameter tables
can be written in the units the paper uses (ns, pJ, um^2, KB, GHz)
without sprinkling conversion constants across modules.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Prefix constants
# ---------------------------------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12

KiB = 1024
MiB = 1024 * 1024


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

def ns(value: float) -> float:
    """Nanoseconds -> seconds."""
    return value * NANO


def us(value: float) -> float:
    """Microseconds -> seconds."""
    return value * MICRO


def ms(value: float) -> float:
    """Milliseconds -> seconds."""
    return value * MILLI


def ghz(value: float) -> float:
    """Gigahertz -> hertz."""
    return value * GIGA


def mhz(value: float) -> float:
    """Megahertz -> hertz."""
    return value * MEGA


def cycles_to_seconds(cycles: int, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` into seconds."""
    return cycles / frequency_hz


# ---------------------------------------------------------------------------
# Energy / power
# ---------------------------------------------------------------------------

def pj(value: float) -> float:
    """Picojoules -> joules."""
    return value * PICO


def nj(value: float) -> float:
    """Nanojoules -> joules."""
    return value * NANO


def mw(value: float) -> float:
    """Milliwatts -> watts."""
    return value * MILLI


def watts_from(energy_joules: float, time_seconds: float) -> float:
    """Average power of ``energy_joules`` spent over ``time_seconds``."""
    if time_seconds <= 0:
        raise ValueError("time must be positive to compute power")
    return energy_joules / time_seconds


# ---------------------------------------------------------------------------
# Area
# ---------------------------------------------------------------------------

def um2(value: float) -> float:
    """Square micrometres -> square metres."""
    return value * 1e-12


def mm2(value: float) -> float:
    """Square millimetres -> square metres."""
    return value * 1e-6


def to_mm2(area_m2: float) -> float:
    """Square metres -> square millimetres (for reporting)."""
    return area_m2 * 1e6


# ---------------------------------------------------------------------------
# Capacity / bandwidth
# ---------------------------------------------------------------------------

def kib(value: float) -> int:
    """Kibibytes -> bytes."""
    return int(value * KiB)


def mib(value: float) -> int:
    """Mebibytes -> bytes."""
    return int(value * MiB)


def gb_per_s(value: float) -> float:
    """Gigabytes/second -> bytes/second."""
    return value * GIGA
