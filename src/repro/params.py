"""Architecture parameter sets.

This module centralises every number the paper's evaluation fixes:

* Table I  — system simulation parameters (8-core A15-class host).
* Table II — memory parameters at 32 nm (8 KB sub-array, 1.25 MB slice).
* Sec. III — micro compute cluster (MCC) composition.
* Sec. V-A — clock frequencies for small/large accelerator tiles.

Each parameter group is a frozen dataclass so experiment code cannot
mutate a shared configuration by accident; derived quantities are
exposed as properties.  ``default_system()`` builds the exact
configuration evaluated in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from .errors import ConfigurationError
from .units import ghz, kib, mib, ns

# Number of bytes in one cache line across the whole hierarchy.
CACHE_LINE_BYTES = 64

# Width of the sub-array read port in bits (Sec. II: "each with a 32bit
# port").  One row read therefore supplies one 5-LUT configuration.
SUBARRAY_PORT_BITS = 32


@dataclass(frozen=True)
class SubarrayParams:
    """An 8 KB SRAM sub-array (paper Table II, 32 nm).

    The sub-array is the atom of both caching and compute: in cache
    mode a row holds data bits, in compute mode a row holds the
    configuration of one 5-input LUT (32 bits = 2^5).
    """

    size_bytes: int = kib(8)
    port_bits: int = SUBARRAY_PORT_BITS
    access_time_s: float = ns(0.12)
    access_energy_j: float = 0.00369e-9
    width_mm: float = 0.136
    height_mm: float = 0.096

    @property
    def rows(self) -> int:
        """Number of addressable rows (one port-width word per row)."""
        return self.size_bytes * 8 // self.port_bits

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    def validate(self) -> None:
        if self.size_bytes <= 0 or self.port_bits <= 0:
            raise ConfigurationError("sub-array size and port must be positive")
        if (self.size_bytes * 8) % self.port_bits:
            raise ConfigurationError("sub-array size must be a whole number of rows")


@dataclass(frozen=True)
class SliceParams:
    """One LLC slice (paper Fig. 1 / Table II).

    A slice is ``ways`` cache ways; each way is one data array (DA) per
    quadrant; each DA is two sub-arrays.  With the defaults this gives
    20 ways x 4 DAs x 16 KB = 1.25 MB and 160 sub-arrays, matching
    Table II.
    """

    ways: int = 20
    quadrants: int = 4
    subarrays_per_data_array: int = 2
    subarray: SubarrayParams = field(default_factory=SubarrayParams)
    height_mm: float = 1.63
    width_mm: float = 1.92
    line_bytes: int = CACHE_LINE_BYTES

    @property
    def data_arrays_per_way(self) -> int:
        return self.quadrants

    @property
    def subarrays_per_way(self) -> int:
        return self.quadrants * self.subarrays_per_data_array

    @property
    def subarray_count(self) -> int:
        return self.ways * self.subarrays_per_way

    @property
    def way_bytes(self) -> int:
        return self.subarrays_per_way * self.subarray.size_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.ways * self.way_bytes

    @property
    def sets(self) -> int:
        return self.way_bytes // self.line_bytes

    @property
    def area_mm2(self) -> float:
        return self.height_mm * self.width_mm

    def validate(self) -> None:
        self.subarray.validate()
        if self.ways < 2:
            raise ConfigurationError("a slice needs at least 2 ways (MCCs pair ways)")
        if self.way_bytes % self.line_bytes:
            raise ConfigurationError("way capacity must be a whole number of lines")


@dataclass(frozen=True)
class CacheLevelParams:
    """A conventional cache level (paper Table I)."""

    name: str
    size_bytes: int
    ways: int
    latency_cycles: int
    line_bytes: int = CACHE_LINE_BYTES

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    def validate(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ConfigurationError(
                f"{self.name}: size must divide into ways x line size"
            )


@dataclass(frozen=True)
class DramParams:
    """Main memory (paper Table I: 4 channels of DDR4-2400).

    Peak bandwidth is channels x 8 bytes x transfer rate; the paper's
    intro quotes ~56 ns access latency for off-chip DRAM.
    """

    channels: int = 4
    transfer_rate_mts: float = 2400.0
    bus_bytes: int = 8
    access_latency_s: float = ns(56.0)
    energy_per_bit_j: float = 28e-12  # paper intro: 28-45 pJ/bit; low end

    @property
    def peak_bandwidth_bytes_s(self) -> float:
        return self.channels * self.bus_bytes * self.transfer_rate_mts * 1e6


@dataclass(frozen=True)
class HostCoreParams:
    """One host core (paper Table I, A15-class)."""

    isa: str = "ARM"
    fetch_width: int = 3
    decode_width: int = 3
    dispatch_width: int = 6
    issue_width: int = 8
    commit_width: int = 8
    clock_hz: float = ghz(4.0)


@dataclass(frozen=True)
class MccParams:
    """Micro compute cluster composition (paper Sec. III-B, V-A).

    One MCC = 2 data arrays in adjacent ways = 4 compute sub-arrays.
    Per folding cycle it provides ``luts_per_cycle`` 5-LUTs (double in
    4-LUT mode), one MAC operation, one bus operation, and latches into
    a ``register_file_bits``-entry flip-flop bank.
    """

    data_arrays: int = 2
    subarrays: int = 4
    lut_inputs: int = 5
    luts_per_cycle: int = 4          # 5-LUT mode; 4-LUT mode doubles this
    macs_per_cycle: int = 1
    bus_ops_per_cycle: int = 1
    register_file_bits: int = 256
    mac_width_bits: int = 32

    def lut_slots(self, lut_inputs: int) -> int:
        """LUT evaluations available per cycle for a given LUT width."""
        if lut_inputs == self.lut_inputs:
            return self.luts_per_cycle
        if lut_inputs == self.lut_inputs - 1:
            return self.luts_per_cycle * 2
        raise ConfigurationError(
            f"unsupported LUT width {lut_inputs} (sub-array port fits "
            f"{self.lut_inputs}- or {self.lut_inputs - 1}-input LUTs)"
        )

    def config_rows(self, subarray: SubarrayParams) -> int:
        """Folding steps whose LUT configs fit in one sub-array."""
        return subarray.rows


@dataclass(frozen=True)
class FreacClocking:
    """Accelerator clocks (paper Sec. V-A).

    Tiles built from fewer than ``large_tile_threshold`` MCCs meet
    timing at 4 GHz; larger tiles need switch-box hops and close at
    3 GHz.
    """

    small_tile_hz: float = ghz(4.0)
    large_tile_hz: float = ghz(3.0)
    large_tile_threshold: int = 16

    def tile_clock_hz(self, mccs_per_tile: int) -> float:
        if mccs_per_tile >= self.large_tile_threshold:
            return self.large_tile_hz
        return self.small_tile_hz


@dataclass(frozen=True)
class SystemParams:
    """The full evaluated system (paper Table I + Sec. III).

    Bundles the host CPU complex, the three-level cache hierarchy with
    a sliced NUCA L3, DRAM, and the FReaC additions.
    """

    cores: int = 8
    core: HostCoreParams = field(default_factory=HostCoreParams)
    l1: CacheLevelParams = field(
        default_factory=lambda: CacheLevelParams("L1D", kib(32), 2, 2)
    )
    l2: CacheLevelParams = field(
        default_factory=lambda: CacheLevelParams("L2D", kib(256), 8, 10)
    )
    l3_slices: int = 8
    l3_latency_cycles: int = 27
    slice_params: SliceParams = field(default_factory=SliceParams)
    dram: DramParams = field(default_factory=DramParams)
    mcc: MccParams = field(default_factory=MccParams)
    clocking: FreacClocking = field(default_factory=FreacClocking)
    llc_leakage_w: float = 1.125  # paper Sec. V, via McPAT

    @property
    def l3_size_bytes(self) -> int:
        return self.l3_slices * self.slice_params.capacity_bytes

    @property
    def l3(self) -> CacheLevelParams:
        """The L3 viewed as a conventional cache level (Table I row)."""
        return CacheLevelParams(
            "L3D", self.l3_size_bytes, self.slice_params.ways, self.l3_latency_cycles
        )

    @property
    def mccs_per_slice_max(self) -> int:
        """MCC tiles when every way of a slice is given to compute."""
        per_way_pair = self.slice_params.data_arrays_per_way
        return (self.slice_params.ways // 2) * per_way_pair

    def mccs_for_ways(self, compute_ways: int) -> int:
        """MCC tiles formed by locking ``compute_ways`` ways.

        Ways are consumed in pairs (Sec. III-C: "two ways are completely
        consumed at a time, such that four MCC tiles are formed").
        """
        if compute_ways % 2:
            raise ConfigurationError("compute ways are consumed in pairs")
        if not 0 <= compute_ways <= self.slice_params.ways:
            raise ConfigurationError("compute ways out of range for slice")
        return (compute_ways // 2) * self.slice_params.data_arrays_per_way

    def validate(self) -> None:
        self.l1.validate()
        self.l2.validate()
        self.slice_params.validate()
        if self.l3_slices < 1:
            raise ConfigurationError("need at least one LLC slice")
        if self.cores < 1:
            raise ConfigurationError("need at least one core")


def default_system() -> SystemParams:
    """The paper's evaluated configuration (Table I / Table II)."""
    system = SystemParams()
    system.validate()
    return system


def scaled_system(l3_slices: int = 8, cores: int = 8) -> SystemParams:
    """A variant of the default system with a different slice/core count."""
    system = replace(default_system(), l3_slices=l3_slices, cores=cores)
    system.validate()
    return system


def table1_rows(system: SystemParams) -> Tuple[Tuple[str, str], ...]:
    """Render Table I as (parameter, value) rows for the bench harness."""
    core = system.core
    slice_mb = system.slice_params.capacity_bytes / mib(1)
    return (
        ("ISA/Num Cores", f"{core.isa}/{system.cores} cores"),
        ("Fetch/Decode Width", f"{core.fetch_width}/{core.decode_width}"),
        (
            "Dispatch/Issue/Commit Width",
            f"{core.dispatch_width}/{core.issue_width}/{core.commit_width}",
        ),
        ("Clock", f"{core.clock_hz / 1e9:.0f}GHz"),
        (
            "L1D Cache Size/Ways/Latency",
            f"{system.l1.size_bytes // kib(1)}KB/{system.l1.ways}-way/"
            f"{system.l1.latency_cycles}cycle",
        ),
        (
            "L2D Cache Size/Ways/Latency",
            f"{system.l2.size_bytes // kib(1)}KB/{system.l2.ways}-way/"
            f"{system.l2.latency_cycles}cycle",
        ),
        (
            "L3D Cache Size/Ways/Latency",
            f"{system.l3_size_bytes // mib(1)}MB/{system.slice_params.ways}-way/"
            f"{system.l3_latency_cycles}cycle",
        ),
        (
            "L3D Cache Slice Number/Size",
            f"{system.l3_slices}/{slice_mb:.2f}MB",
        ),
        (
            "Memory Controller",
            f"{system.dram.channels} channels, "
            f"DDR4-{system.dram.transfer_rate_mts:.0f}",
        ),
    )
