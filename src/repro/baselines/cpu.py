"""The host-CPU baseline (paper Sec. V: OpenMP across all 8 A15 cores).

A port-pressure timing model: each benchmark item has a dynamic
instruction mix (:class:`~repro.workloads.suite.CpuCosts`); the core
sustains a fixed throughput per port class (ALU, multiplier,
load/store), and per-item latency is the binding port pressure times a
dependency-stall factor.  Memory behaviour is bandwidth-based:
streaming kernels move their distinct working set through the
hierarchy at the core's (or the socket's, for multi-threaded runs)
sustainable bandwidth, and execution overlaps with that traffic.

This plays gem5's role for the baseline at a fidelity adequate for the
paper's relative comparisons; the constants are ordinary A15-class
throughputs, not fitted curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import SystemParams, default_system
from ..power.cpu_power import CpuPowerModel
from ..workloads.suite import BenchmarkSpec


@dataclass(frozen=True)
class CpuRunEstimate:
    """Latency/power estimate of one benchmark run on the CPU."""

    threads: int
    compute_s: float
    memory_s: float
    init_s: float

    @property
    def kernel_s(self) -> float:
        """Kernel latency: compute overlapped with memory streaming."""
        return max(self.compute_s, self.memory_s)

    @property
    def end_to_end_s(self) -> float:
        return self.init_s + self.kernel_s

    @property
    def bound(self) -> str:
        return "compute" if self.compute_s >= self.memory_s else "memory"


@dataclass(frozen=True)
class CpuBaseline:
    """Timing + power for 1..N threads of the A15-class host."""

    system: SystemParams = None  # type: ignore[assignment]
    alu_ops_per_cycle: float = 2.0
    mul_ops_per_cycle: float = 1.0
    mem_ops_per_cycle: float = 2.0
    branch_ops_per_cycle: float = 2.0
    dependency_stall_factor: float = 1.25
    per_core_stream_bw_bytes_s: float = 8.0e9
    # Streaming from the LLC (footprint fits on chip) is faster per
    # core and is not throttled by the DRAM controller.  The shared
    # ceiling reflects an edge-class ring interconnect: well below the
    # sum of per-core demands, which is what makes the 8-thread runs
    # memory-limited (the paper's multi-threaded baselines scale well
    # below 8x for the same reason).
    per_core_llc_bw_bytes_s: float = 16.0e9
    llc_shared_bw_bytes_s: float = 30.0e9
    parallel_efficiency: float = 0.95
    power: CpuPowerModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.system is None:
            object.__setattr__(self, "system", default_system())
        if self.power is None:
            object.__setattr__(self, "power", CpuPowerModel())

    # ------------------------------------------------------------------

    def cycles_per_item(self, spec: BenchmarkSpec) -> float:
        """Binding-port latency of one item on one core."""
        costs = spec.cpu
        pressures = (
            costs.int_ops / self.alu_ops_per_cycle,
            costs.mul_ops / self.mul_ops_per_cycle,
            (costs.loads + costs.stores) / self.mem_ops_per_cycle,
            costs.branches / self.branch_ops_per_cycle,
        )
        return max(pressures) * self.dependency_stall_factor

    def _stream_bandwidth(self, threads: int, footprint_bytes: int) -> float:
        """Sustainable bandwidth, aware of where the data lives.

        Footprints that fit the LLC stream from on-chip SRAM; larger
        ones are bounded by the DRAM controller.
        """
        if footprint_bytes <= self.system.l3_size_bytes:
            return min(
                threads * self.per_core_llc_bw_bytes_s,
                self.llc_shared_bw_bytes_s,
            )
        dram = self.system.dram
        socket_bw = dram.peak_bandwidth_bytes_s * 0.75
        return min(threads * self.per_core_stream_bw_bytes_s, socket_bw)

    def estimate(self, spec: BenchmarkSpec, threads: int = 1) -> CpuRunEstimate:
        """Latency of the whole scaled batch on ``threads`` cores."""
        if not 1 <= threads <= self.system.cores:
            raise ValueError(
                f"threads must be 1..{self.system.cores}, got {threads}"
            )
        clock = self.system.core.clock_hz
        effective_threads = 1 if threads == 1 else threads * self.parallel_efficiency
        compute_s = (
            spec.items * self.cycles_per_item(spec) / clock / effective_threads
        )
        touched = spec.total_input_bytes() + spec.total_output_bytes()
        bandwidth = self._stream_bandwidth(threads, touched)
        memory_s = touched / bandwidth
        # Initialisation: the host materialises the inputs in memory
        # before the kernel (Fig. 13 charges this to every platform).
        init_s = spec.total_input_bytes() / bandwidth
        return CpuRunEstimate(
            threads=threads,
            compute_s=compute_s,
            memory_s=memory_s,
            init_s=init_s,
        )

    def power_w(self, threads: int) -> float:
        return self.power.package_power_w(
            active_cores=threads, total_cores=self.system.cores
        )

    def perf_per_watt(self, spec: BenchmarkSpec, threads: int = 1) -> float:
        """Items per second per watt for the kernel phase."""
        estimate = self.estimate(spec, threads)
        return (spec.items / estimate.kernel_s) / self.power_w(threads)
