"""Baseline platform models the paper compares against (Sec. V-C).

* :mod:`.cpu` — the 8-core A15-class host itself (single- and
  multi-threaded OpenMP-style data parallel runs),
* :mod:`.fpga` — a large PCIe-attached FPGA (ZCU102-class) and a small
  edge SoC FPGA (Ultra96-class), with DMA/configuration and transfer
  costs,
* :mod:`.embedded` — lightweight A7-class cores placed in the LLC
  (the iso-area near-cache alternative of Fig. 14).
"""

from .cpu import CpuBaseline, CpuRunEstimate
from .fpga import FpgaPlatform, FpgaBaseline, FpgaRunEstimate, ZCU102, ULTRA96
from .embedded import EmbeddedCoresBaseline
from .compute_cache import ComputeCacheBaseline

__all__ = [
    "CpuBaseline",
    "CpuRunEstimate",
    "FpgaPlatform",
    "FpgaBaseline",
    "FpgaRunEstimate",
    "ZCU102",
    "ULTRA96",
    "EmbeddedCoresBaseline",
    "ComputeCacheBaseline",
]
