"""Embedded cores in the LLC: the near-cache alternative (Fig. 14).

The paper's Sec. VI comparison: instead of FReaC's folded logic, place
lightweight A7-class cores next to the cache ("one EC per slice" for
iso-area, or two), give them 16 ways of the LLC as scratchpad, and run
the same data-parallel kernels.  An A7 is a narrow in-order core, so
its per-item latency uses the same port-pressure model as the host CPU
with in-order widths and a lower clock — and, sitting at the LLC, its
memory traffic streams from the scratchpad rather than DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..power.energy import LLC_LEAKAGE_W
from ..workloads.suite import BenchmarkSpec

A7_AREA_MM2 = 0.49  # paper: ~0.49 mm^2 per A7-class core [61], [62]


@dataclass(frozen=True)
class EmbeddedCoresBaseline:
    """N in-LLC A7-class cores with LLC-scratchpad-backed data."""

    cores: int = 8
    clock_hz: float = 2.0e9
    alu_ops_per_cycle: float = 1.0     # in-order, dual-issue limited
    mul_ops_per_cycle: float = 0.5
    mem_ops_per_cycle: float = 1.0
    dependency_stall_factor: float = 1.35
    per_core_scratch_bw_bytes_s: float = 8.0e9  # LLC-local streaming
    core_power_w: float = 0.10                  # A7-class @ 32 nm LP

    def cycles_per_item(self, spec: BenchmarkSpec) -> float:
        costs = spec.cpu
        pressures = (
            (costs.int_ops + costs.branches) / self.alu_ops_per_cycle,
            costs.mul_ops / self.mul_ops_per_cycle,
            (costs.loads + costs.stores) / self.mem_ops_per_cycle,
        )
        return max(pressures) * self.dependency_stall_factor

    def kernel_s(self, spec: BenchmarkSpec) -> float:
        compute_s = (
            spec.items * self.cycles_per_item(spec) / self.clock_hz / self.cores
        )
        touched = spec.total_input_bytes() + spec.total_output_bytes()
        memory_s = touched / (self.cores * self.per_core_scratch_bw_bytes_s)
        return max(compute_s, memory_s)

    def power_w(self) -> float:
        # Cores plus their share of the LLC they occupy as scratchpad.
        return self.cores * self.core_power_w + 0.8 * LLC_LEAKAGE_W

    @property
    def area_mm2(self) -> float:
        return self.cores * A7_AREA_MM2
