"""A Compute-Cache-style bit-line computing baseline (paper Sec. VI).

The paper contrasts FReaC Cache with Compute Caches [21], which
activate two rows of a sub-array simultaneously so the bit-lines
compute element-wise Boolean operations in place: "the authors are
limited to a simple set of bit operations — AND, OR, XOR, copy, and
compares — which are effective for the data manipulation domain ...
Where Compute Cache offers average speedups of 1.9X on
data-manipulation workloads, FReaC Cache demonstrated an average
speedup of 3X across diverse workloads."

The model here captures both sides of that contrast:

* *within* its domain a bit-line engine is extremely fast — one
  64-byte line pair per sub-array per access across all enabled ways —
  so on bulk bitwise workloads it beats the CPU by small integer
  factors (bounded by the non-accelerated fraction of the run, an
  Amdahl argument the Compute Caches paper itself makes);
* *outside* that domain it simply cannot run the kernel: only
  VADD-free bitwise benchmarks are expressible, so the diverse FReaC
  suite is mostly out of reach.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..params import SystemParams, default_system


class BitlineOp(enum.Enum):
    AND = "and"
    OR = "or"
    XOR = "xor"
    COPY = "copy"
    COMPARE = "compare"


# FReaC-suite benchmarks a bit-line engine could express at all.
EXPRESSIBLE_BENCHMARKS = frozenset({"KMP"})  # byte-compare search only


@dataclass(frozen=True)
class DataManipulationWorkload:
    """A bulk bitwise workload (the Compute Caches evaluation domain)."""

    name: str
    op: BitlineOp
    total_bytes: int
    # Fraction of the end-to-end run the bitwise kernel represents on
    # the CPU; the rest (setup, reduction, control) stays on the CPU.
    accelerable_fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.accelerable_fraction <= 1.0:
            raise ValueError("accelerable fraction must be in (0, 1]")


# The data-manipulation suite of the Compute Caches paper, abstracted:
# bitmap index intersection, bulk zeroing/copying (e.g. page init),
# string/byte-stream matching, checksum-style XOR folding.
DATA_MANIPULATION_SUITE: List[DataManipulationWorkload] = [
    DataManipulationWorkload("BitmapIndex", BitlineOp.AND, 8 << 20, 0.50),
    DataManipulationWorkload("BulkCopy", BitlineOp.COPY, 16 << 20, 0.55),
    DataManipulationWorkload("StringMatch", BitlineOp.COMPARE, 8 << 20, 0.40),
    DataManipulationWorkload("ChecksumXor", BitlineOp.XOR, 8 << 20, 0.45),
    DataManipulationWorkload("BitmapClear", BitlineOp.COPY, 8 << 20, 0.50),
]


@dataclass(frozen=True)
class ComputeCacheBaseline:
    """In-place bit-line computing in the LLC sub-arrays."""

    system: SystemParams = None  # type: ignore[assignment]
    # Operand placement: both source lines must sit in the same
    # sub-array; achieving that costs copies, modelled as a slowdown.
    placement_overhead: float = 1.3
    # CPU-side streaming throughput for the same bulk loop (two reads
    # + one write per element through the LLC).
    cpu_bulk_bandwidth_bytes_s: float = 10e9

    def __post_init__(self) -> None:
        if self.system is None:
            object.__setattr__(self, "system", default_system())

    @property
    def lines_per_cycle(self) -> float:
        """Line-pairs operated per cache cycle across the LLC.

        One in-place op per slice per access cycle (the control box
        issues one wide activation at a time per slice).
        """
        return float(self.system.l3_slices)

    def kernel_time_s(self, workload: DataManipulationWorkload) -> float:
        lines = workload.total_bytes / 64
        cycles = lines * self.placement_overhead / self.lines_per_cycle
        return cycles / self.system.core.clock_hz

    def cpu_time_s(self, workload: DataManipulationWorkload) -> float:
        return workload.total_bytes / self.cpu_bulk_bandwidth_bytes_s

    def speedup(self, workload: DataManipulationWorkload) -> float:
        """End-to-end speedup with Amdahl's non-accelerable remainder."""
        cpu = self.cpu_time_s(workload)
        accel = self.kernel_time_s(workload)
        fraction = workload.accelerable_fraction
        accelerated = cpu * (1 - fraction) + cpu * fraction * (
            accel / max(cpu, 1e-30)
        )
        # Equivalent: serial part + accelerated part.
        accelerated = cpu * (1 - fraction) + fraction * accel
        return cpu / accelerated

    def average_speedup(
        self, suite: Optional[List[DataManipulationWorkload]] = None
    ) -> float:
        suite = suite if suite is not None else DATA_MANIPULATION_SUITE
        product = 1.0
        for workload in suite:
            product *= self.speedup(workload)
        return product ** (1.0 / len(suite))

    @staticmethod
    def can_express(benchmark_name: str) -> bool:
        """Can the bit-line engine run this FReaC-suite benchmark?"""
        return benchmark_name.upper() in EXPRESSIBLE_BENCHMARKS
