"""FPGA baselines: PCIe ZCU102-class and edge Ultra96-class boards.

Follows the paper's methodology (Sec. V-C): synthesise the benchmark
IP, "instantiate 256 copies ... to reflect maximum data parallelism",
batch if they do not fit, charge "a 160 us latency for DMA and
configuration overheads", the PCIe 3.0 x16 (or AXI) transfer of the
working set, and board idle + dynamic power from the power estimator.

Per-copy resource usage comes from *our own* technology mapper on the
same PE netlists FReaC runs — the honest apples-to-apples the paper
gets from Vivado.  Each IP copy is assumed fully pipelined at an
initiation interval of one item per cycle (standard for HLS kernels
with their datasets in BRAM), so the FPGA wins on raw kernel
throughput but pays heavily on transfers and power — the paper's
observed shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..circuits.library import mapped_pe
from ..circuits.netlist import NodeKind
from ..workloads.suite import BenchmarkSpec

DMA_SETUP_S = 160e-6   # Choi et al. DMA + configuration latency [17]
DSPS_PER_MAC = 4       # a 32x32 multiply-accumulate maps to 4 DSP48s


@dataclass(frozen=True)
class FpgaPlatform:
    """A board: fabric capacity, clock, link, and power."""

    name: str
    luts: int
    dsps: int
    clock_hz: float
    link_bandwidth_bytes_s: float
    idle_power_w: float            # board idle + leakage
    dynamic_power_full_w: float    # fabric fully busy

    def power_w(self, utilization: float) -> float:
        utilization = min(max(utilization, 0.0), 1.0)
        return self.idle_power_w + utilization * self.dynamic_power_full_w


# Zynq UltraScale+ ZU9EG on a PCIe 3.0 x16 carrier.
ZCU102 = FpgaPlatform(
    name="ZCU102",
    luts=274_080,
    dsps=2_520,
    clock_hz=300e6,
    link_bandwidth_bytes_s=16e9,
    idle_power_w=12.0,             # measured board idle [18]
    dynamic_power_full_w=13.0,
)

# Zynq UltraScale+ ZU3EG (Ultra96), AXI-attached inside the SoC.
ULTRA96 = FpgaPlatform(
    name="U96",
    luts=70_560,
    dsps=360,
    clock_hz=250e6,
    link_bandwidth_bytes_s=4e9,
    idle_power_w=2.5,
    dynamic_power_full_w=3.5,
)


@dataclass(frozen=True)
class FpgaRunEstimate:
    platform: str
    copies: int
    transfer_s: float
    kernel_s: float
    setup_s: float
    power_w: float

    @property
    def end_to_end_s(self) -> float:
        return self.setup_s + self.transfer_s + self.kernel_s

    @property
    def energy_j(self) -> float:
        return self.power_w * self.end_to_end_s


@lru_cache(maxsize=None)
def ip_resources(name: str) -> tuple:
    """(LUTs, DSPs) of one IP copy, from our technology mapper."""
    mapped = mapped_pe(name)
    luts = sum(1 for node in mapped.nodes if node.kind is NodeKind.LUT)
    macs = sum(1 for node in mapped.nodes if node.kind is NodeKind.MAC)
    # Pipelined HLS IPs replicate arithmetic across stages; registers
    # and control add roughly 30 % on top of the datapath LUTs.
    return int(luts * 1.3) + 150, macs * DSPS_PER_MAC


@dataclass(frozen=True)
class FpgaBaseline:
    platform: FpgaPlatform
    max_copies: int = 256   # the paper instantiates up to 256 IP copies

    def copies_for(self, spec: BenchmarkSpec) -> int:
        luts, dsps = ip_resources(spec.name)
        by_lut = self.platform.luts // max(luts, 1)
        by_dsp = self.platform.dsps // dsps if dsps else self.max_copies
        return max(1, min(self.max_copies, by_lut, by_dsp))

    def estimate(self, spec: BenchmarkSpec) -> FpgaRunEstimate:
        copies = self.copies_for(spec)
        # One item per cycle per pipelined copy.
        kernel_s = spec.items / (copies * self.platform.clock_hz)
        moved = spec.total_input_bytes() + spec.total_output_bytes()
        transfer_s = moved / self.platform.link_bandwidth_bytes_s
        luts, dsps = ip_resources(spec.name)
        utilization = min(
            1.0,
            copies * luts / self.platform.luts
            + (copies * dsps / self.platform.dsps if self.platform.dsps else 0.0) * 0.5,
        )
        return FpgaRunEstimate(
            platform=self.platform.name,
            copies=copies,
            transfer_s=transfer_s,
            kernel_s=kernel_s,
            setup_s=DMA_SETUP_S,
            power_w=self.platform.power_w(utilization),
        )
