"""A data array (DA): two sub-arrays sharing one 32-bit port each.

Paper Sec. II: "Each 32KB data array is comprised of two 16KB
sub-arrays, each with a 32bit port" (the evaluated edge configuration
halves this to 2 x 8 KB).  The data arrays of one way share a data
bus, so line transfers are serialised word by word — the bus cost is
accounted for in the slice, not here.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import CacheError
from ..params import SliceParams, SubarrayParams
from .subarray import Subarray


class DataArray:
    """Two sub-arrays addressed as a contiguous row space."""

    def __init__(self, subarray_params: SubarrayParams | None = None,
                 subarrays: int = 2) -> None:
        params = subarray_params or SubarrayParams()
        self.subarrays: List[Subarray] = [Subarray(params) for _ in range(subarrays)]
        self._rows_each = params.rows

    @property
    def rows(self) -> int:
        return self._rows_each * len(self.subarrays)

    @property
    def size_bytes(self) -> int:
        return sum(sub.params.size_bytes for sub in self.subarrays)

    def _route(self, row: int) -> tuple[Subarray, int]:
        if not 0 <= row < self.rows:
            raise CacheError(f"data-array row {row} out of range")
        return self.subarrays[row // self._rows_each], row % self._rows_each

    def read_row(self, row: int) -> int:
        sub, local = self._route(row)
        return sub.read_row(local)

    def write_row(self, row: int, value: int) -> None:
        sub, local = self._route(row)
        sub.write_row(local, value)

    def load_words(self, start_row: int, words: np.ndarray) -> None:
        for offset, word in enumerate(words):
            self.write_row(start_row + offset, int(word))

    def dump_words(self, start_row: int, count: int) -> np.ndarray:
        return np.array(
            [self.read_row(start_row + offset) for offset in range(count)],
            dtype=np.uint32,
        )

    @property
    def access_count(self) -> int:
        return sum(sub.access_count for sub in self.subarrays)

    @property
    def access_energy_j(self) -> float:
        return sum(sub.access_energy_j for sub in self.subarrays)

    def reset_counters(self) -> None:
        for sub in self.subarrays:
            sub.reset_counters()

    def clear(self) -> None:
        for sub in self.subarrays:
            sub.clear()


def build_way_data_arrays(slice_params: SliceParams) -> List[DataArray]:
    """The data arrays composing one way (one per quadrant)."""
    return [
        DataArray(slice_params.subarray, slice_params.subarrays_per_data_array)
        for _ in range(slice_params.quadrants)
    ]
