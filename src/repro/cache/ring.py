"""NUCA ring interconnect between cores and LLC slices.

Paper Sec. II: slices "are organized around a central interconnect
that provides high bandwidth between the cores and all the slices ...
cores may experience non-uniform latency depending on the slice's
distance, due to the use of interconnects, such as ring busses."

``RingInterconnect`` models the bidirectional ring of Intel/Samsung
sliced LLCs: each core/slice pair sits at a ring station, a request
takes the shorter direction, and total L3 latency is

    inject + hops * hop_cycles + slice_access (+ return trip).

With the default parameters the *average* round-trip latency over the
8-slice configuration reproduces Table I's 27-cycle L3 latency, which
the flat hierarchy model uses as a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from ..telemetry import Telemetry
from ..telemetry.core import resolve
from .address import AddressCodec


@dataclass(frozen=True)
class RingInterconnect:
    """A bidirectional ring with one station per core/slice pair."""

    stations: int = 8
    hop_cycles: int = 1
    inject_cycles: int = 1
    slice_access_cycles: int = 22

    def __post_init__(self) -> None:
        if self.stations < 1:
            raise ConfigurationError("a ring needs at least one station")

    def hops(self, source: int, destination: int) -> int:
        """Stations traversed taking the shorter ring direction."""
        self._check(source)
        self._check(destination)
        clockwise = (destination - source) % self.stations
        return min(clockwise, self.stations - clockwise)

    def request_latency(self, core: int, slice_index: int) -> int:
        """One-way latency from a core's station to a slice."""
        return (
            self.inject_cycles
            + self.hops(core, slice_index) * self.hop_cycles
        )

    def access_latency(self, core: int, slice_index: int) -> int:
        """Round trip: request, slice access, response."""
        one_way = self.request_latency(core, slice_index)
        return one_way + self.slice_access_cycles + (one_way - self.inject_cycles)

    def average_access_latency(self, core: int = 0) -> float:
        """Average over slices — uniform line interleaving makes every
        slice equally likely."""
        total = sum(
            self.access_latency(core, s) for s in range(self.stations)
        )
        return total / self.stations

    def worst_case_latency(self, core: int = 0) -> int:
        return max(self.access_latency(core, s) for s in range(self.stations))

    def _check(self, station: int) -> None:
        if not 0 <= station < self.stations:
            raise ConfigurationError(f"station {station} out of range")


class NucaLlc:
    """Address-interleaved slice selection + ring latency + stats."""

    def __init__(self, codec: AddressCodec,
                 ring: RingInterconnect | None = None, *,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.codec = codec
        self.ring = ring or RingInterconnect(stations=codec.slices)
        if self.ring.stations != codec.slices:
            raise ConfigurationError("ring stations must equal slice count")
        self.accesses_per_slice: List[int] = [0] * codec.slices
        self.total_latency = 0
        self.total_hops = 0
        self.telemetry = resolve(telemetry)

    def access(self, core: int, address: int) -> int:
        """Route one L3 access; returns its latency in cycles."""
        slice_index = self.codec.decode(address).slice_index
        station = core % self.ring.stations
        hops = self.ring.hops(station, slice_index)
        latency = self.ring.access_latency(station, slice_index)
        self.accesses_per_slice[slice_index] += 1
        self.total_latency += latency
        self.total_hops += hops
        if self.telemetry.enabled:
            self.telemetry.counter(
                "cache.ring.accesses", "L3 accesses routed per slice"
            ).inc(slice=slice_index)
            self.telemetry.counter(
                "cache.ring.hops", "ring stations traversed (one way)"
            ).inc(hops)
            self.telemetry.histogram(
                "cache.ring.hop_distance",
                "one-way hop distance distribution",
                buckets=tuple(
                    float(h) for h in range(self.ring.stations // 2 + 1)
                ),
            ).observe(float(hops))
        return latency

    @property
    def accesses(self) -> int:
        return sum(self.accesses_per_slice)

    def average_latency(self) -> float:
        if not self.accesses:
            return 0.0
        return self.total_latency / self.accesses

    def average_hops(self) -> float:
        """Mean one-way hop distance over every routed access."""
        if not self.accesses:
            return 0.0
        return self.total_hops / self.accesses

    def load_balance(self) -> float:
        """Max/mean slice load — 1.0 is perfectly balanced."""
        if not self.accesses:
            return 1.0
        mean = self.accesses / len(self.accesses_per_slice)
        return max(self.accesses_per_slice) / mean
