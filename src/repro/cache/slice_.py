"""One LLC slice: tag/state arrays, data arrays, way locking & flushing.

The slice is the unit FReaC Cache repurposes.  It supports three roles
per way:

* ``CACHE``      — normal set-associative caching (the default),
* ``COMPUTE``    — the way's sub-arrays hold LUT configuration bits,
* ``SCRATCHPAD`` — the way's sub-arrays hold accelerator-local data.

Way locking and flushing reuse mechanisms modern LLCs already have
(paper Sec. III-C: sleep logic, fuse bits, way allocation), which is
why the slice exposes them as first-class operations.

Functionally the slice really stores bytes: a 64-byte line in way *w*
of set *s* is striped across the way's eight sub-arrays (8 bytes, i.e.
two 32-bit rows, per sub-array) — mirroring observation 2 of Sec. II
that sub-arrays of a way operate in lock-step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Type

from ..errors import CacheError, LockedWayError
from ..params import SliceParams
from .dataarray import DataArray, build_way_data_arrays
from .replacement import LruPolicy, ReplacementPolicy


class WayMode(enum.Enum):
    """What a way's sub-arrays currently hold."""

    CACHE = "cache"
    COMPUTE = "compute"
    SCRATCHPAD = "scratchpad"


class LineState(enum.Enum):
    INVALID = 0
    CLEAN = 1
    DIRTY = 2


@dataclass
class SliceStats:
    """Counters the timing/power models consume."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    flushed_dirty_lines: int = 0
    flushed_clean_lines: int = 0
    tag_accesses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _LineMeta:
    state: LineState = LineState.INVALID
    tag: int = -1


@dataclass
class EvictedLine:
    """A line pushed out of the slice (victim or flush)."""

    set_index: int
    way: int
    tag: int
    dirty: bool
    data: bytes


class CacheSlice:
    """A single 20-way slice with lockable, re-purposable ways."""

    def __init__(
        self,
        params: SliceParams | None = None,
        policy_cls: Type[ReplacementPolicy] = LruPolicy,
    ) -> None:
        self.params = params or SliceParams()
        self.params.validate()
        self.sets = self.params.sets
        self.ways = self.params.ways
        self.line_bytes = self.params.line_bytes
        self.stats = SliceStats()

        self._meta: List[List[_LineMeta]] = [
            [_LineMeta() for _ in range(self.ways)] for _ in range(self.sets)
        ]
        self._policies: List[ReplacementPolicy] = [
            policy_cls(self.ways) for _ in range(self.sets)
        ]
        self._way_modes: List[WayMode] = [WayMode.CACHE] * self.ways
        self._data: List[List[DataArray]] = [
            build_way_data_arrays(self.params) for _ in range(self.ways)
        ]

        # Geometry of a line inside a way's sub-array row space.
        subarrays = self.params.subarrays_per_way
        word_bytes = self.params.subarray.port_bits // 8
        self._bytes_per_subarray_per_line = self.line_bytes // subarrays
        self._words_per_subarray_per_line = (
            self._bytes_per_subarray_per_line // word_bytes
        )
        self._word_bytes = word_bytes
        if self._bytes_per_subarray_per_line * subarrays != self.line_bytes:
            raise CacheError("line size must stripe evenly across sub-arrays")

    # ------------------------------------------------------------------
    # Way management (used by the CC Ctrl unit)
    # ------------------------------------------------------------------

    def way_mode(self, way: int) -> WayMode:
        self._check_way(way)
        return self._way_modes[way]

    @property
    def locked_ways(self) -> Set[int]:
        return {
            way for way, mode in enumerate(self._way_modes) if mode != WayMode.CACHE
        }

    @property
    def cache_ways(self) -> int:
        return self.ways - len(self.locked_ways)

    def lock_ways(self, ways: Sequence[int], mode: WayMode) -> List[EvictedLine]:
        """Flush then lock ``ways`` into ``mode``; returns flushed lines.

        Paper Fig. 5 steps 2 and 3: dirty lines in the selected ways are
        flushed, then the ways stop participating in caching.
        """
        if mode == WayMode.CACHE:
            raise CacheError("use unlock_ways to return ways to cache mode")
        flushed: List[EvictedLine] = []
        for way in ways:
            self._check_way(way)
            if self._way_modes[way] != WayMode.CACHE:
                raise LockedWayError(f"way {way} is already locked")
        for way in ways:
            flushed.extend(self.flush_way(way))
            self._way_modes[way] = mode
            for array in self._data[way]:
                array.clear()
        return flushed

    def retarget_ways(self, ways: Sequence[int], mode: WayMode) -> None:
        """Move already-locked ways between non-cache modes in place.

        An elastic resize that turns a compute way into a scratchpad
        way (or back) never re-enters cache mode, so there is nothing
        to flush — the sub-arrays are simply cleared and re-badged.
        """
        if mode == WayMode.CACHE:
            raise CacheError("use unlock_ways to return ways to cache mode")
        for way in ways:
            self._check_way(way)
            if self._way_modes[way] == WayMode.CACHE:
                raise LockedWayError(
                    f"way {way} is in cache mode; lock it first"
                )
        for way in ways:
            self._way_modes[way] = mode
            for array in self._data[way]:
                array.clear()

    def unlock_ways(self, ways: Sequence[int]) -> None:
        """Return ways to cache mode with all lines invalid."""
        for way in ways:
            self._check_way(way)
            self._way_modes[way] = WayMode.CACHE
            for set_index in range(self.sets):
                self._meta[set_index][way] = _LineMeta()
            for array in self._data[way]:
                array.clear()

    def flush_way(self, way: int) -> List[EvictedLine]:
        """Write back and invalidate every line held in ``way``."""
        self._check_way(way)
        flushed: List[EvictedLine] = []
        for set_index in range(self.sets):
            meta = self._meta[set_index][way]
            if meta.state is LineState.INVALID:
                continue
            dirty = meta.state is LineState.DIRTY
            data = self._read_line_data(set_index, way) if dirty else b""
            flushed.append(
                EvictedLine(set_index, way, meta.tag, dirty, data)
            )
            if dirty:
                self.stats.flushed_dirty_lines += 1
                self.stats.writebacks += 1
            else:
                self.stats.flushed_clean_lines += 1
            self._meta[set_index][way] = _LineMeta()
        return flushed

    # ------------------------------------------------------------------
    # Cache-mode operations
    # ------------------------------------------------------------------

    def lookup(self, set_index: int, tag: int, *, touch: bool = True) -> Optional[int]:
        """Return the way holding (set, tag), or None on miss."""
        self._check_set(set_index)
        self.stats.tag_accesses += 1
        for way, meta in enumerate(self._meta[set_index]):
            if meta.state is not LineState.INVALID and meta.tag == tag:
                if self._way_modes[way] != WayMode.CACHE:
                    raise CacheError("valid line found in a locked way")
                if touch:
                    self._policies[set_index].touch(way)
                self.stats.hits += 1
                return way
        self.stats.misses += 1
        return None

    def fill(
        self,
        set_index: int,
        tag: int,
        data: bytes | None = None,
        *,
        dirty: bool = False,
    ) -> Optional[EvictedLine]:
        """Install a line, evicting a victim if necessary.

        Returns the evicted line (if any valid line was displaced) so
        the hierarchy can write it back.
        """
        self._check_set(set_index)
        locked = self.locked_ways
        if len(locked) == self.ways:
            raise LockedWayError("no cache ways left: entire slice is compute")
        metas = self._meta[set_index]
        valid = [meta.state is not LineState.INVALID for meta in metas]
        way = self._policies[set_index].victim(locked, valid)
        victim: Optional[EvictedLine] = None
        old = metas[way]
        if old.state is not LineState.INVALID:
            self.stats.evictions += 1
            victim_data = (
                self._read_line_data(set_index, way)
                if old.state is LineState.DIRTY
                else b""
            )
            if old.state is LineState.DIRTY:
                self.stats.writebacks += 1
            victim = EvictedLine(
                set_index, way, old.tag, old.state is LineState.DIRTY, victim_data
            )
        metas[way] = _LineMeta(LineState.DIRTY if dirty else LineState.CLEAN, tag)
        self._policies[set_index].touch(way)
        self.stats.fills += 1
        if data is not None:
            self._write_line_data(set_index, way, data)
        return victim

    def read_line(self, set_index: int, way: int) -> bytes:
        """Read a full line's bytes (charges sub-array accesses)."""
        self._check_valid(set_index, way)
        return self._read_line_data(set_index, way)

    def write_line(self, set_index: int, way: int, data: bytes) -> None:
        """Overwrite a line's bytes and mark it dirty."""
        self._check_valid(set_index, way)
        self._write_line_data(set_index, way, data)
        self._meta[set_index][way].state = LineState.DIRTY

    def line_state(self, set_index: int, way: int) -> LineState:
        self._check_set(set_index)
        self._check_way(way)
        return self._meta[set_index][way].state

    def line_tag(self, set_index: int, way: int) -> int:
        self._check_set(set_index)
        self._check_way(way)
        return self._meta[set_index][way].tag

    def dirty_line_count(self) -> int:
        return sum(
            1
            for per_set in self._meta
            for meta in per_set
            if meta.state is LineState.DIRTY
        )

    # ------------------------------------------------------------------
    # Raw way storage (compute / scratchpad roles)
    # ------------------------------------------------------------------

    def way_arrays(self, way: int) -> List[DataArray]:
        """Direct access to a locked way's data arrays.

        Only legal when the way is not in cache mode; the FReaC layers
        build LUT stores and scratchpads on top of this.
        """
        self._check_way(way)
        if self._way_modes[way] == WayMode.CACHE:
            raise LockedWayError(f"way {way} is in cache mode; lock it first")
        return self._data[way]

    # ------------------------------------------------------------------
    # Energy accounting
    # ------------------------------------------------------------------

    @property
    def subarray_access_count(self) -> int:
        return sum(
            array.access_count for way in self._data for array in way
        )

    @property
    def subarray_energy_j(self) -> float:
        return sum(
            array.access_energy_j for way in self._data for array in way
        )

    def reset_counters(self) -> None:
        self.stats = SliceStats()
        for way in self._data:
            for array in way:
                array.reset_counters()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _read_line_data(self, set_index: int, way: int) -> bytes:
        chunks: List[bytes] = []
        for array_index, local_sub, row in self._line_rows(set_index):
            word = self._data[way][array_index].read_row(
                local_sub * self.params.subarray.rows + row
            )
            chunks.append(word.to_bytes(self._word_bytes, "little"))
        return b"".join(chunks)

    def _write_line_data(self, set_index: int, way: int, data: bytes) -> None:
        if len(data) != self.line_bytes:
            raise CacheError(
                f"line data must be exactly {self.line_bytes} bytes"
            )
        offset = 0
        for array_index, local_sub, row in self._line_rows(set_index):
            word = int.from_bytes(
                data[offset : offset + self._word_bytes], "little"
            )
            self._data[way][array_index].write_row(
                local_sub * self.params.subarray.rows + row, word
            )
            offset += self._word_bytes

    def _line_rows(self, set_index: int):
        """Yield (data_array, sub-array-within-array, row) for a line.

        The line is striped across all sub-arrays of the way so they
        operate in lock-step, each contributing consecutive rows
        starting at ``set_index * words_per_subarray_per_line``.
        """
        base_row = set_index * self._words_per_subarray_per_line
        for array_index in range(self.params.quadrants):
            for local_sub in range(self.params.subarrays_per_data_array):
                for word in range(self._words_per_subarray_per_line):
                    yield array_index, local_sub, base_row + word

    def _check_set(self, set_index: int) -> None:
        if not 0 <= set_index < self.sets:
            raise CacheError(f"set {set_index} out of range")

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise CacheError(f"way {way} out of range")

    def _check_valid(self, set_index: int, way: int) -> None:
        self._check_set(set_index)
        self._check_way(way)
        if self._meta[set_index][way].state is LineState.INVALID:
            raise CacheError(f"line (set={set_index}, way={way}) is invalid")
