"""Three-level cache hierarchy with a sliced, capacity-adjustable LLC.

Used by the CPU baseline timing model and the interference study
(paper Fig. 15).  L1 and L2 are private per core; the L3 is shared and
modelled as one tag-only cache whose capacity/associativity can be
restricted to reflect ways locked for FReaC compute or scratchpads.

The hierarchy returns, per access, the level that serviced it and the
latency in core cycles (Table I latencies + DRAM on a full miss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..params import CacheLevelParams, SystemParams
from ..telemetry import Telemetry
from ..telemetry.core import resolve
from .address import AddressCodec
from .cache import SetAssociativeCache
from .ring import NucaLlc, RingInterconnect


@dataclass
class AccessResult:
    level: str            # "L1", "L2", "L3", or "DRAM"
    latency_cycles: float


@dataclass
class HierarchyStats:
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0
    accesses: int = 0

    @property
    def l3_miss_rate(self) -> float:
        l3_seen = self.l3_hits + self.dram_accesses
        return self.dram_accesses / l3_seen if l3_seen else 0.0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class CacheHierarchy:
    """Per-core L1/L2 over a shared L3 of restrictable capacity."""

    def __init__(
        self,
        system: SystemParams | None = None,
        *,
        cores: int | None = None,
        l3_bytes_available: int | None = None,
        use_ring: bool = False,
        inclusive: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.telemetry = resolve(telemetry)
        self.system = system or SystemParams()
        self.cores = cores if cores is not None else self.system.cores
        if self.cores < 1:
            raise ConfigurationError("need at least one core")
        self.line_bytes = self.system.l1.line_bytes
        self._l1 = [SetAssociativeCache(self.system.l1) for _ in range(self.cores)]
        self._l2 = [SetAssociativeCache(self.system.l2) for _ in range(self.cores)]
        self._l3_bypassed = False
        l3_params = self._l3_params(l3_bytes_available)
        self._l3 = SetAssociativeCache(l3_params)
        self.stats = HierarchyStats()
        core_hz = self.system.core.clock_hz
        self._dram_cycles = self.system.dram.access_latency_s * core_hz
        # Inclusive LLCs back-invalidate private copies on L3 eviction
        # (this is what makes way flushing sufficient for FReaC: once
        # the LLC line is gone, no core holds it).  The paper notes
        # flush cost "depends on ... inclusion policies" (Sec. III-C).
        self.inclusive = inclusive
        self.stats_back_invalidations = 0
        # Optional NUCA detail: per-access L3 latency from the ring
        # distance instead of the flat Table-I constant.
        self.nuca: NucaLlc | None = None
        if use_ring:
            codec = AddressCodec(
                line_bytes=self.line_bytes,
                sets_per_slice=self.system.slice_params.sets,
                slices=self.system.l3_slices,
            )
            self.nuca = NucaLlc(
                codec, RingInterconnect(stations=self.system.l3_slices),
                telemetry=self.telemetry,
            )

    def _l3_params(self, l3_bytes_available: int | None) -> CacheLevelParams:
        """The shared L3, possibly shrunk by locked ways.

        Locking ways reduces associativity uniformly across slices, so
        the model scales both size and ways by the retained fraction.
        ``l3_bytes_available=0`` means the whole LLC is consumed for
        compute: core requests bypass it entirely ("treated as misses,
        and forwarded to memory", Sec. III-C).
        """
        full = self.system.l3
        if l3_bytes_available is None or l3_bytes_available >= full.size_bytes:
            return full
        if l3_bytes_available < 0:
            raise ConfigurationError("L3 capacity cannot be negative")
        if l3_bytes_available == 0:
            self._l3_bypassed = True
            return full  # structure kept for stats; never consulted
        way_bytes = full.size_bytes // full.ways
        ways = max(1, l3_bytes_available // way_bytes)
        return CacheLevelParams(
            "L3D", ways * way_bytes, ways, full.latency_cycles, full.line_bytes
        )

    @property
    def l3_capacity_bytes(self) -> int:
        if self._l3_bypassed:
            return 0
        return self._l3.params.size_bytes

    def _count_level(self, level: str) -> None:
        if self.telemetry.enabled:
            self.telemetry.counter(
                "cache.hierarchy.accesses",
                "accesses by the level that serviced them",
            ).inc(level=level)

    def access(self, core: int, address: int, is_write: bool) -> AccessResult:
        """Walk the hierarchy for one load/store from ``core``."""
        if not 0 <= core < self.cores:
            raise ConfigurationError(f"core {core} out of range")
        line = address // self.line_bytes
        self.stats.accesses += 1
        if self._l1[core].access(line, is_write):
            self.stats.l1_hits += 1
            self._count_level("L1")
            return AccessResult("L1", self.system.l1.latency_cycles)
        if self._l2[core].access(line, is_write):
            self.stats.l2_hits += 1
            self._count_level("L2")
            return AccessResult(
                "L2", self.system.l1.latency_cycles + self.system.l2.latency_cycles
            )
        if self._l3_bypassed:
            # The entire LLC is compute: straight to memory.
            self.stats.dram_accesses += 1
            self._count_level("DRAM")
            return AccessResult(
                "DRAM",
                self.system.l1.latency_cycles
                + self.system.l2.latency_cycles
                + self._dram_cycles,
            )
        if self.nuca is not None:
            l3_latency = self.nuca.access(core, address)
        else:
            l3_latency = self.system.l3_latency_cycles
        on_chip = (
            self.system.l1.latency_cycles
            + self.system.l2.latency_cycles
            + l3_latency
        )
        if self._l3.access(line, is_write):
            self.stats.l3_hits += 1
            self._count_level("L3")
            return AccessResult("L3", on_chip)
        self.stats.dram_accesses += 1
        self._count_level("DRAM")
        if self.telemetry.enabled and self._l3.last_evicted_line is not None:
            self.telemetry.counter(
                "cache.l3.evictions", "L3 lines displaced by fills"
            ).inc()
        if self.inclusive and self._l3.last_evicted_line is not None:
            evicted = self._l3.last_evicted_line
            for private in self._l1 + self._l2:
                if private.invalidate(evicted):
                    self.stats_back_invalidations += 1
                    if self.telemetry.enabled:
                        self.telemetry.counter(
                            "cache.back_invalidations",
                            "private copies dropped by inclusive L3 evictions",
                        ).inc()
        return AccessResult("DRAM", on_chip + self._dram_cycles)

    def run_trace(self, core: int, trace) -> float:
        """Replay (address, is_write) pairs; returns total memory cycles."""
        total = 0.0
        for address, is_write in trace:
            total += self.access(core, address, is_write).latency_cycles
        return total

    def flush_everything(self) -> int:
        """Flush all levels; returns total dirty lines written back."""
        dirty = 0
        for cache in self._l1 + self._l2:
            dirty += cache.flush_all()
        dirty += self._l3.flush_all()
        return dirty
