"""Sliced last-level cache substrate.

Models the LLC the paper builds on (Huang et al.'s sliced design,
paper Sec. II): a NUCA L3 split into per-core slices around a central
interconnect, where each slice is 20 ways of four data arrays and each
data array is two 8 KB SRAM sub-arrays with a 32-bit port.

The substrate is both *functional* (it stores bytes and returns them)
and *statistical* (hits, misses, evictions, sub-array accesses are
counted so the timing and power models can charge them).
"""

from .address import AddressCodec, DecodedAddress
from .replacement import LruPolicy, PseudoLruPolicy, ReplacementPolicy
from .subarray import Subarray
from .dataarray import DataArray
from .slice_ import CacheSlice, LineState
from .cache import SetAssociativeCache
from .hierarchy import AccessResult, CacheHierarchy, HierarchyStats
from .coherence import CoherentSystem, MsiState
from .ring import NucaLlc, RingInterconnect

__all__ = [
    "AddressCodec",
    "DecodedAddress",
    "ReplacementPolicy",
    "LruPolicy",
    "PseudoLruPolicy",
    "Subarray",
    "DataArray",
    "CacheSlice",
    "LineState",
    "SetAssociativeCache",
    "CacheHierarchy",
    "AccessResult",
    "HierarchyStats",
    "CoherentSystem",
    "MsiState",
    "NucaLlc",
    "RingInterconnect",
]
