"""A generic tag-only set-associative cache (L1/L2 model).

The private levels of the hierarchy do not need functional data
storage for any experiment — only hit/miss behaviour and dirty-line
accounting — so this model keeps tags and states only, which makes
trace-driven simulation fast enough for the interference study
(paper Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Type

from ..errors import CacheError
from ..params import CacheLevelParams
from .replacement import LruPolicy, ReplacementPolicy


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """Tags + dirty bits, LRU by default, optional capacity restriction.

    ``effective_ways`` allows modelling a cache whose associativity has
    been reduced (e.g. an LLC slice with ways locked for compute)
    without rebuilding the object.
    """

    def __init__(
        self,
        params: CacheLevelParams,
        policy_cls: Type[ReplacementPolicy] = LruPolicy,
    ) -> None:
        params.validate()
        self.params = params
        self.sets = params.sets
        self.ways = params.ways
        self._effective_ways = params.ways
        self._policy_cls = policy_cls
        self.stats = CacheStats()
        # Per set: list of (tag, dirty) with positions = ways.
        self._tags: List[List[Optional[int]]] = [
            [None] * self.ways for _ in range(self.sets)
        ]
        self._dirty: List[List[bool]] = [
            [False] * self.ways for _ in range(self.sets)
        ]
        self._policies = [policy_cls(self.ways) for _ in range(self.sets)]
        # Line address displaced by the most recent fill (or None):
        # hierarchies with inclusion read this to back-invalidate.
        self.last_evicted_line: Optional[int] = None

    # ------------------------------------------------------------------

    @property
    def effective_ways(self) -> int:
        return self._effective_ways

    def restrict_ways(self, effective_ways: int) -> None:
        """Reduce usable associativity (locked ways), invalidating the rest."""
        if not 1 <= effective_ways <= self.ways:
            raise CacheError("effective ways out of range")
        self._effective_ways = effective_ways
        for set_index in range(self.sets):
            for way in range(effective_ways, self.ways):
                self._tags[set_index][way] = None
                self._dirty[set_index][way] = False

    def _locked(self) -> set:
        return set(range(self._effective_ways, self.ways))

    def _index(self, line_address: int) -> Tuple[int, int]:
        set_index = line_address % self.sets
        tag = line_address // self.sets
        return set_index, tag

    # ------------------------------------------------------------------

    def access(self, line_address: int, is_write: bool) -> bool:
        """Access a line; returns True on hit.  Misses fill the line."""
        hit = self.probe(line_address)
        set_index, tag = self._index(line_address)
        if hit:
            way = self._find(set_index, tag)
            self.stats.hits += 1
            self._policies[set_index].touch(way)
            if is_write:
                self._dirty[set_index][way] = True
            return True
        self.stats.misses += 1
        self._fill(set_index, tag, is_write)
        return False

    def probe(self, line_address: int) -> bool:
        """Check presence without updating state."""
        set_index, tag = self._index(line_address)
        return self._find(set_index, tag) is not None

    def invalidate(self, line_address: int) -> bool:
        """Drop a line (back-invalidation); returns True if present."""
        set_index, tag = self._index(line_address)
        way = self._find(set_index, tag)
        if way is None:
            return False
        self._tags[set_index][way] = None
        self._dirty[set_index][way] = False
        return True

    def flush_all(self) -> int:
        """Invalidate everything; returns the number of dirty lines."""
        dirty = 0
        for set_index in range(self.sets):
            for way in range(self.ways):
                if self._tags[set_index][way] is not None:
                    if self._dirty[set_index][way]:
                        dirty += 1
                        self.stats.writebacks += 1
                    self._tags[set_index][way] = None
                    self._dirty[set_index][way] = False
        return dirty

    def resident_lines(self) -> int:
        return sum(
            1
            for per_set in self._tags
            for tag in per_set
            if tag is not None
        )

    # ------------------------------------------------------------------

    def _find(self, set_index: int, tag: int) -> Optional[int]:
        for way in range(self._effective_ways):
            if self._tags[set_index][way] == tag:
                return way
        return None

    def _fill(self, set_index: int, tag: int, is_write: bool) -> None:
        valid = [self._tags[set_index][w] is not None for w in range(self.ways)]
        way = self._policies[set_index].victim(self._locked(), valid)
        old_tag = self._tags[set_index][way]
        if old_tag is not None:
            self.stats.evictions += 1
            if self._dirty[set_index][way]:
                self.stats.writebacks += 1
            self.last_evicted_line = old_tag * self.sets + set_index
        else:
            self.last_evicted_line = None
        self._tags[set_index][way] = tag
        self._dirty[set_index][way] = is_write
        self._policies[set_index].touch(way)
