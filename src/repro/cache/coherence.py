"""Directory-based MSI coherence with the LLC as the ordering point.

FReaC Cache leans on the LLC already being "the point of coherence in
modern multi-core CPUs" (Sec. VII): accelerator operands live in
scratchpads carved from LLC ways, so locking a way must first force
every private copy of its lines back (flush), and while a region is
accelerator-owned the cores must not hold modified copies of it.

This module models exactly that much protocol: per-core private caches
tracked at line granularity in Modified/Shared/Invalid states, a
directory at the LLC enforcing the single-writer/multiple-reader
(SWMR) invariant, and a flush operation the CC Ctrl uses before
locking ways.  Capacity in the private caches is modelled with an LRU
bound so eviction-driven writebacks appear too.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..errors import CacheError


class MsiState(enum.Enum):
    MODIFIED = "M"
    SHARED = "S"
    INVALID = "I"


@dataclass
class CoherenceStats:
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0
    invalidations: int = 0
    downgrades: int = 0
    writebacks: int = 0
    flush_writebacks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class _PrivateCache:
    """LRU-bounded per-core line states."""

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines < 1:
            raise CacheError("private cache needs capacity for one line")
        self.capacity = capacity_lines
        self.lines: "OrderedDict[int, MsiState]" = OrderedDict()

    def state(self, line: int) -> MsiState:
        return self.lines.get(line, MsiState.INVALID)

    def touch(self, line: int) -> None:
        if line in self.lines:
            self.lines.move_to_end(line)

    def install(self, line: int, state: MsiState) -> Optional[tuple]:
        """Insert/update a line; returns an evicted (line, state) or None."""
        evicted = None
        if line not in self.lines and len(self.lines) >= self.capacity:
            evicted = self.lines.popitem(last=False)
        self.lines[line] = state
        self.lines.move_to_end(line)
        return evicted

    def drop(self, line: int) -> MsiState:
        return self.lines.pop(line, MsiState.INVALID)


class CoherentSystem:
    """N cores + directory; operations are reads, writes, and flushes."""

    def __init__(self, cores: int, private_capacity_lines: int = 4096) -> None:
        if cores < 1:
            raise CacheError("need at least one core")
        self.cores = cores
        self._caches = [_PrivateCache(private_capacity_lines)
                        for _ in range(cores)]
        # Directory: line -> set of cores holding it (state derivable).
        self._sharers: Dict[int, Set[int]] = {}
        self._owner: Dict[int, int] = {}  # line -> core in M, if any
        self.stats = CoherenceStats()

    # ------------------------------------------------------------------

    def read(self, core: int, line: int) -> bool:
        """Load from ``core``; returns True on a private-cache hit."""
        self._check_core(core)
        cache = self._caches[core]
        state = cache.state(line)
        if state is not MsiState.INVALID:
            cache.touch(line)
            self.stats.read_hits += 1
            return True
        self.stats.read_misses += 1
        owner = self._owner.get(line)
        if owner is not None and owner != core:
            # Downgrade the writer: M -> S with a writeback to the LLC.
            self._caches[owner].install(line, MsiState.SHARED)
            self.stats.downgrades += 1
            self.stats.writebacks += 1
            del self._owner[line]
        self._sharers.setdefault(line, set()).add(core)
        self._evict_handling(cache.install(line, MsiState.SHARED), core)
        return False

    def write(self, core: int, line: int) -> bool:
        """Store from ``core``; returns True on an exclusive hit."""
        self._check_core(core)
        cache = self._caches[core]
        if cache.state(line) is MsiState.MODIFIED:
            cache.touch(line)
            self.stats.write_hits += 1
            return True
        self.stats.write_misses += 1
        for sharer in sorted(self._sharers.get(line, set())):
            if sharer == core:
                continue
            previous = self._caches[sharer].drop(line)
            self.stats.invalidations += 1
            if previous is MsiState.MODIFIED:
                self.stats.writebacks += 1
        self._sharers[line] = {core}
        self._owner[line] = core
        self._evict_handling(cache.install(line, MsiState.MODIFIED), core)
        return False

    def flush_line(self, line: int) -> int:
        """Force every copy of ``line`` back to the LLC (CC Ctrl path).

        Returns the number of dirty writebacks performed.
        """
        writebacks = 0
        for core in sorted(self._sharers.pop(line, set())):
            previous = self._caches[core].drop(line)
            if previous is MsiState.MODIFIED:
                writebacks += 1
                self.stats.flush_writebacks += 1
        self._owner.pop(line, None)
        return writebacks

    def flush_range(self, first_line: int, count: int) -> int:
        """Flush a contiguous line range (a way's worth of addresses)."""
        return sum(
            self.flush_line(line) for line in range(first_line,
                                                    first_line + count)
        )

    # ------------------------------------------------------------------

    def state_of(self, core: int, line: int) -> MsiState:
        self._check_core(core)
        return self._caches[core].state(line)

    def owner_of(self, line: int) -> Optional[int]:
        return self._owner.get(line)

    def sharers_of(self, line: int) -> Set[int]:
        return set(self._sharers.get(line, set()))

    def check_invariants(self) -> None:
        """SWMR: a modified line has exactly one holder and no sharers."""
        for line, owner in self._owner.items():
            holders = self._sharers.get(line, set())
            if holders != {owner}:
                raise CacheError(
                    f"line {line:#x}: owner {owner} but sharers {holders}"
                )
            if self._caches[owner].state(line) is not MsiState.MODIFIED:
                raise CacheError(
                    f"line {line:#x}: directory says M but cache disagrees"
                )
        for line, holders in self._sharers.items():
            modified = [
                core for core in holders
                if self._caches[core].state(line) is MsiState.MODIFIED
            ]
            if len(modified) > 1:
                raise CacheError(f"line {line:#x}: multiple writers {modified}")
            for core in holders:
                if self._caches[core].state(line) is MsiState.INVALID:
                    raise CacheError(
                        f"line {line:#x}: directory lists core {core} "
                        "but its cache holds nothing"
                    )

    # ------------------------------------------------------------------

    def _evict_handling(self, evicted: Optional[tuple], core: int) -> None:
        if evicted is None:
            return
        line, state = evicted
        holders = self._sharers.get(line)
        if holders is not None:
            holders.discard(core)
            if not holders:
                del self._sharers[line]
        if state is MsiState.MODIFIED:
            self.stats.writebacks += 1
            self._owner.pop(line, None)

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.cores:
            raise CacheError(f"core {core} out of range")
