"""Replacement policies for set-associative structures.

Two policies are provided: true LRU (what the reference model and the
tests assume) and tree pseudo-LRU (what real LLC slices implement; the
paper's slice keeps a CV/LRU array per way).  Both honour *locked
ways*: a way handed to compute mode or a scratchpad must never be
chosen as a victim (paper Sec. III-C).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Optional, Set

from ..errors import CacheError


class ReplacementPolicy(ABC):
    """Per-set replacement state shared by every policy."""

    def __init__(self, ways: int) -> None:
        if ways < 1:
            raise CacheError("a set needs at least one way")
        self.ways = ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit/fill on ``way`` (most recently used)."""

    @abstractmethod
    def victim(self, locked: Set[int], valid: Iterable[bool]) -> int:
        """Pick the way to evict, never choosing a locked way.

        Invalid unlocked ways are preferred over evicting valid data.
        """

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.ways:
            raise CacheError(f"way {way} out of range 0..{self.ways - 1}")

    @staticmethod
    def _free_way(locked: Set[int], valid: List[bool]) -> Optional[int]:
        for way, is_valid in enumerate(valid):
            if not is_valid and way not in locked:
                return way
        return None


class LruPolicy(ReplacementPolicy):
    """True least-recently-used order, kept as a recency list."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        # Index 0 is least recently used.
        self._order: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        self._check_way(way)
        self._order.remove(way)
        self._order.append(way)

    def victim(self, locked: Set[int], valid: Iterable[bool]) -> int:
        valid_list = list(valid)
        if len(valid_list) != self.ways:
            raise CacheError("valid bitmap length must equal associativity")
        free = self._free_way(locked, valid_list)
        if free is not None:
            return free
        for way in self._order:
            if way not in locked:
                return way
        raise CacheError("every way in the set is locked; no victim exists")

    def recency(self) -> List[int]:
        """LRU-to-MRU order (exposed for tests)."""
        return list(self._order)


class PseudoLruPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU, as used by real high-associativity LLCs.

    The tree is sized to the next power of two above the associativity;
    leaves beyond ``ways`` are treated as permanently locked.  When the
    tree walk lands on a locked way, the nearest unlocked way in leaf
    order is used instead (a common hardware fallback).
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._leaves = 1
        while self._leaves < ways:
            self._leaves *= 2
        # One bit per internal node; 0 means "go left is colder".
        self._bits = [0] * max(self._leaves - 1, 1)

    def touch(self, way: int) -> None:
        self._check_way(way)
        node = 0
        low, high = 0, self._leaves
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                self._bits[node] = 1  # remember we went left; cold side is right
                node = 2 * node + 1
                high = mid
            else:
                self._bits[node] = 0
                node = 2 * node + 2
                low = mid
        # Single-way sets have no internal nodes to update.

    def victim(self, locked: Set[int], valid: Iterable[bool]) -> int:
        valid_list = list(valid)
        if len(valid_list) != self.ways:
            raise CacheError("valid bitmap length must equal associativity")
        free = self._free_way(locked, valid_list)
        if free is not None:
            return free
        node = 0
        low, high = 0, self._leaves
        while high - low > 1:
            mid = (low + high) // 2
            if self._bits[node]:
                node = 2 * node + 2
                low = mid
            else:
                node = 2 * node + 1
                high = mid
        way = low
        if way < self.ways and way not in locked:
            return way
        for candidate in range(self.ways):
            if candidate not in locked:
                return candidate
        raise CacheError("every way in the set is locked; no victim exists")
