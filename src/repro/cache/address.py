"""Physical address decomposition for the sliced LLC.

Addresses are interleaved across slices at cache-line granularity
(paper Sec. II: "memory addresses are interleaved across slices, and
cores may access any slice").  Within a slice the line address is
split into a set index and a tag, exactly as in a conventional
set-associative cache.

The codec is a bijection: ``decode`` followed by ``encode`` returns the
original line-aligned address.  This invariant is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class DecodedAddress:
    """The result of decoding a physical address."""

    slice_index: int
    set_index: int
    tag: int
    line_offset: int

    @property
    def line_key(self) -> int:
        """A key unique per (slice, set, tag) — i.e. per cache line."""
        return (self.tag << 32) | (self.slice_index << 16) | self.set_index


class AddressCodec:
    """Splits physical addresses into (slice, set, tag, offset) fields.

    Parameters
    ----------
    line_bytes:
        Cache line size; must be a power of two.
    sets_per_slice:
        Number of sets in one slice; must be a power of two.
    slices:
        Number of LLC slices.  Line addresses are interleaved across
        slices round-robin (modulo), which is how sliced Intel/Samsung
        LLCs spread traffic.
    """

    def __init__(self, line_bytes: int, sets_per_slice: int, slices: int) -> None:
        if not _is_power_of_two(line_bytes):
            raise ConfigurationError("line size must be a power of two")
        if not _is_power_of_two(sets_per_slice):
            raise ConfigurationError("sets per slice must be a power of two")
        if slices < 1:
            raise ConfigurationError("need at least one slice")
        self.line_bytes = line_bytes
        self.sets_per_slice = sets_per_slice
        self.slices = slices
        self._offset_bits = line_bytes.bit_length() - 1
        self._set_bits = sets_per_slice.bit_length() - 1

    def line_address(self, address: int) -> int:
        """The address with the intra-line offset stripped."""
        return address >> self._offset_bits

    def decode(self, address: int) -> DecodedAddress:
        """Decompose ``address`` into its routing fields."""
        if address < 0:
            raise ConfigurationError("addresses are unsigned")
        line = self.line_address(address)
        slice_index = line % self.slices
        per_slice_line = line // self.slices
        set_index = per_slice_line & (self.sets_per_slice - 1)
        tag = per_slice_line >> self._set_bits
        return DecodedAddress(
            slice_index=slice_index,
            set_index=set_index,
            tag=tag,
            line_offset=address & (self.line_bytes - 1),
        )

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (up to the line offset)."""
        per_slice_line = (decoded.tag << self._set_bits) | decoded.set_index
        line = per_slice_line * self.slices + decoded.slice_index
        return (line << self._offset_bits) | decoded.line_offset

    def lines_in_range(self, base: int, size_bytes: int) -> int:
        """Number of distinct cache lines touched by [base, base+size)."""
        if size_bytes <= 0:
            return 0
        first = self.line_address(base)
        last = self.line_address(base + size_bytes - 1)
        return last - first + 1
