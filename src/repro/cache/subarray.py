"""Functional model of one 8 KB SRAM sub-array.

The sub-array is deliberately dumb: a row-addressable array of
``port_bits``-wide words, with access counters.  It does not know
whether its rows currently hold cache data, scratchpad data, or LUT
configuration bits — that interpretation lives in the layers above,
exactly mirroring the paper's claim that the memory arrays themselves
are never modified (Sec. III-A).
"""

from __future__ import annotations

import numpy as np

from ..errors import CacheError
from ..params import SubarrayParams


class Subarray:
    """A row-addressable SRAM array with access accounting.

    Each read or write of one row is a single-cycle operation at the
    cache clock (paper Sec. II observation 4) and costs
    ``params.access_energy_j``.
    """

    def __init__(self, params: SubarrayParams | None = None) -> None:
        self.params = params or SubarrayParams()
        self.params.validate()
        self._rows = np.zeros(self.params.rows, dtype=np.uint32)
        self._mask = (1 << self.params.port_bits) - 1
        self.reads = 0
        self.writes = 0

    @property
    def rows(self) -> int:
        return self.params.rows

    def read_row(self, row: int) -> int:
        """Read one port-width word; counts one access."""
        self._check_row(row)
        self.reads += 1
        return int(self._rows[row])

    def write_row(self, row: int, value: int) -> None:
        """Write one port-width word; counts one access."""
        self._check_row(row)
        if not 0 <= value <= self._mask:
            raise CacheError(
                f"value {value:#x} does not fit a {self.params.port_bits}-bit row"
            )
        self.writes += 1
        self._rows[row] = value

    def peek(self, row: int) -> int:
        """Read without charging an access (for assertions/tests)."""
        self._check_row(row)
        return int(self._rows[row])

    def charge_reads(self, count: int) -> None:
        """Account ``count`` extra row reads without moving data.

        The batch-vectorized engine performs one physical row access
        for a whole batch but must charge the same traffic the
        hardware would see (one access per invocation).
        """
        if count < 0:
            raise CacheError("cannot charge a negative access count")
        self.reads += count

    def charge_writes(self, count: int) -> None:
        """Account ``count`` extra row writes without moving data."""
        if count < 0:
            raise CacheError("cannot charge a negative access count")
        self.writes += count

    def gather_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized multi-row read; charges one access per row."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.rows):
            raise CacheError("gather exceeds sub-array bounds")
        self.reads += int(rows.size)
        return self._rows[rows]

    def scatter_rows(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Vectorized multi-row write; charges one access per row.

        Later duplicates win, matching a sequential write stream.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.rows):
            raise CacheError("scatter exceeds sub-array bounds")
        values = np.asarray(values, dtype=np.uint64)
        if values.size and int(values.max()) > self._mask:
            raise CacheError(
                f"value does not fit a {self.params.port_bits}-bit row"
            )
        self.writes += int(rows.size)
        self._rows[rows] = values.astype(np.uint32)

    def load_words(self, start_row: int, words: np.ndarray) -> None:
        """Bulk-load rows, charging one write per row."""
        end = start_row + len(words)
        if start_row < 0 or end > self.rows:
            raise CacheError("bulk load exceeds sub-array bounds")
        self._rows[start_row:end] = words.astype(np.uint32)
        self.writes += len(words)

    def dump_words(self, start_row: int, count: int) -> np.ndarray:
        """Bulk-read rows, charging one read per row."""
        end = start_row + count
        if start_row < 0 or end > self.rows:
            raise CacheError("bulk dump exceeds sub-array bounds")
        self.reads += count
        return self._rows[start_row:end].copy()

    @property
    def access_count(self) -> int:
        return self.reads + self.writes

    @property
    def access_energy_j(self) -> float:
        """Total energy charged to this sub-array so far."""
        return self.access_count * self.params.access_energy_j

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0

    def clear(self) -> None:
        """Zero the array contents (used when a way changes role)."""
        self._rows[:] = 0

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise CacheError(f"row {row} out of range 0..{self.rows - 1}")
